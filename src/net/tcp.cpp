#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>

#include "util/error.h"

namespace teraphim::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw IoError(what + ": " + std::strerror(errno));
}

void set_io_timeout(int fd, int optname, int ms) {
    timeval tv{};
    if (ms > 0) {
        tv.tv_sec = ms / 1000;
        tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
    }
    ::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof tv);
}

bool is_timeout_errno(int err) { return err == EAGAIN || err == EWOULDBLOCK; }

}  // namespace

// ---- MuxMetrics ---------------------------------------------------------

MuxMetrics MuxMetrics::resolve(obs::MetricsRegistry* registry, const std::string& librarian) {
    MuxMetrics m;
    if (registry == nullptr) return m;
    obs::Labels labels;
    if (!librarian.empty()) labels.emplace_back("librarian", librarian);
    m.frames_sent = &registry->counter("teraphim_mux_frames_sent_total", labels);
    m.frames_received = &registry->counter("teraphim_mux_frames_received_total", labels);
    m.bytes_sent = &registry->counter("teraphim_mux_bytes_sent_total", labels);
    m.bytes_received = &registry->counter("teraphim_mux_bytes_received_total", labels);
    m.timeouts = &registry->counter("teraphim_mux_timeouts_total", labels);
    m.fatal_errors = &registry->counter("teraphim_mux_fatal_errors_total", labels);
    m.in_flight = &registry->gauge("teraphim_mux_in_flight", labels);
    return m;
}

// ---- TcpConnection ------------------------------------------------------

TcpConnection::TcpConnection(int fd) : fd_(fd) {
    TERAPHIM_ASSERT(fd_ >= 0);
    // The protocol is request/response with small frames; disable Nagle
    // so round trips are not delayed (handshaking cost matters, Sec. 4).
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

TcpConnection::~TcpConnection() { close(); }

TcpConnection::TcpConnection(TcpConnection&& other) noexcept
    : fd_(other.fd_), bytes_sent_(other.bytes_sent_), bytes_received_(other.bytes_received_) {
    other.fd_ = -1;
}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        bytes_sent_ = other.bytes_sent_;
        bytes_received_ = other.bytes_received_;
        other.fd_ = -1;
    }
    return *this;
}

TcpConnection TcpConnection::connect_to(const std::string& host, std::uint16_t port,
                                        int timeout_ms) {
    const std::string where = host + ":" + std::to_string(port);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw IoError("invalid address: " + host);
    }

    const auto fail = [&](const std::string& what) -> TcpConnection {
        const int err = errno;
        ::close(fd);
        errno = err;
        throw_errno(what + " " + where);
    };

    if (timeout_ms <= 0) {
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
            fail("connect to");
        }
        return TcpConnection(fd);
    }

    // Deadline-bounded connect: non-blocking connect raced against
    // poll(), so an unresponsive (black-holed) librarian address cannot
    // hang the caller for the kernel's multi-minute SYN timeout.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) fail("fcntl for");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        if (errno != EINPROGRESS) fail("connect to");
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLOUT;
        int rc;
        do {
            rc = ::poll(&pfd, 1, timeout_ms);
        } while (rc < 0 && errno == EINTR);
        if (rc < 0) fail("poll for connect to");
        if (rc == 0) {
            ::close(fd);
            throw TimeoutError("connect to " + where + " timed out after " +
                               std::to_string(timeout_ms) + "ms");
        }
        int err = 0;
        socklen_t len = sizeof err;
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) fail("getsockopt for");
        if (err != 0) {
            errno = err;
            fail("connect to");
        }
    }
    if (::fcntl(fd, F_SETFL, flags) != 0) fail("fcntl for");
    return TcpConnection(fd);
}

void TcpConnection::set_send_timeout(int ms) {
    if (fd_ >= 0) set_io_timeout(fd_, SO_SNDTIMEO, ms);
}

void TcpConnection::set_recv_timeout(int ms) {
    if (fd_ >= 0) set_io_timeout(fd_, SO_RCVTIMEO, ms);
}

void TcpConnection::write_all(const std::uint8_t* data, std::size_t len) {
    std::size_t sent = 0;
    while (sent < len) {
        const ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (is_timeout_errno(errno)) throw TimeoutError("send timed out");
            throw_errno("send");
        }
        sent += static_cast<std::size_t>(n);
    }
    bytes_sent_ += len;
}

void TcpConnection::read_all(std::uint8_t* data, std::size_t len) {
    std::size_t got = 0;
    while (got < len) {
        const ssize_t n = ::recv(fd_, data + got, len - got, 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (is_timeout_errno(errno)) throw TimeoutError("recv timed out");
            throw_errno("recv");
        }
        if (n == 0) throw IoError("connection closed by peer");
        got += static_cast<std::size_t>(n);
    }
    bytes_received_ += len;
}

void TcpConnection::send_message(const Message& message) {
    send_message(message, message.correlation);
}

void TcpConnection::send_message(const Message& message, std::uint32_t correlation) {
    TERAPHIM_ASSERT(is_open());
    std::uint8_t header[Message::kHeaderBytes];
    message.encode_header(header, correlation);
    write_all(header, sizeof header);
    if (!message.payload.empty()) write_all(message.payload.data(), message.payload.size());
}

Message TcpConnection::recv_message() {
    TERAPHIM_ASSERT(is_open());
    std::uint8_t header[Message::kHeaderBytes];
    read_all(header, sizeof header);
    const Message::Header h = Message::decode_header(header);
    Message m;
    m.type = h.type;
    m.correlation = h.correlation;
    m.budget_ms = h.budget_ms;
    m.payload.resize(h.payload_length);
    if (h.payload_length > 0) read_all(m.payload.data(), h.payload_length);
    return m;
}

void TcpConnection::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void TcpConnection::shutdown_both() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

// ---- MuxConnection ------------------------------------------------------

MuxConnection::MuxConnection(TcpConnection conn, int request_timeout_ms, MuxMetrics metrics)
    : conn_(std::move(conn)), timeout_ms_(request_timeout_ms), metrics_(metrics) {
    // The reader owns the receive direction; sends get a kernel deadline
    // so a peer that stops draining its socket cannot wedge a writer.
    if (timeout_ms_ > 0) conn_.set_send_timeout(timeout_ms_);
    reader_ = std::thread([this] { reader_loop(); });
}

MuxConnection::~MuxConnection() {
    close();
    if (reader_.joinable()) reader_.join();
    // conn_ closes its fd only now, after the reader is done with it.
}

util::Future<Message> MuxConnection::submit(const Message& request) {
    util::Promise<Message> promise;
    util::Future<Message> fut = promise.future();

    std::uint32_t id = 0;
    std::exception_ptr dead_error;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (dead_.load()) {
            dead_error = death_;
        } else {
            // Fresh id: never 0 (the "unassigned" sentinel), never one
            // still pending or abandoned. With u32 ids and bounded
            // in-flight counts the loop terminates immediately in
            // practice.
            do {
                id = next_id_++;
                if (next_id_ == 0) next_id_ = 1;
            } while (id == 0 || pending_.count(id) != 0 || abandoned_.count(id) != 0);
            Pending p;
            p.promise = std::move(promise);
            p.deadline = timeout_ms_ > 0
                             ? std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds(timeout_ms_)
                             : std::chrono::steady_clock::time_point::max();
            pending_.emplace(id, std::move(p));
            note_in_flight(pending_.size());
        }
    }
    if (dead_error) {
        promise.set_exception(std::move(dead_error));
        return fut;
    }

    try {
        std::lock_guard<std::mutex> lock(write_mu_);
        conn_.send_message(request, id);
        if (metrics_.frames_sent != nullptr) metrics_.frames_sent->inc();
        if (metrics_.bytes_sent != nullptr) {
            metrics_.bytes_sent->inc(Message::kHeaderBytes + request.payload.size());
        }
    } catch (...) {
        // A failed or half-written frame corrupts the stream for every
        // request sharing it; fail them all (including this one — its
        // promise is in pending_).
        fail_all(std::current_exception());
    }
    return fut;
}

std::size_t MuxConnection::in_flight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.size();
}

std::uint64_t MuxConnection::bytes_sent() const {
    std::lock_guard<std::mutex> lock(write_mu_);
    return conn_.bytes_sent();
}

void MuxConnection::close() {
    closing_.store(true);
    // Wakes the reader out of poll()/recv(); it then fails the pending
    // table and exits.
    conn_.shutdown_both();
}

void MuxConnection::reader_loop() {
    std::exception_ptr death;
    try {
        for (;;) {
            if (closing_.load()) throw IoError("multiplexed connection closed");
            // Poll with a bounded tick so per-request deadlines are
            // enforced even while the socket is silent.
            int wait_ms = 200;
            const auto now = std::chrono::steady_clock::now();
            {
                std::lock_guard<std::mutex> lock(mu_);
                for (const auto& [id, p] : pending_) {
                    if (p.deadline == std::chrono::steady_clock::time_point::max()) continue;
                    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                                          p.deadline - now)
                                          .count();
                    wait_ms = static_cast<int>(
                        std::max<long long>(0, std::min<long long>(wait_ms, left)));
                }
            }
            pollfd pfd{};
            pfd.fd = conn_.native_handle();
            pfd.events = POLLIN;
            const int rc = ::poll(&pfd, 1, wait_ms);
            if (rc < 0) {
                if (errno == EINTR) continue;
                throw_errno("poll");
            }
            expire_deadlines(std::chrono::steady_clock::now());
            if (rc == 0) continue;
            complete(conn_.recv_message());
        }
    } catch (...) {
        death = std::current_exception();
    }
    fail_all(death);
}

void MuxConnection::expire_deadlines(std::chrono::steady_clock::time_point now) {
    std::vector<std::pair<std::uint32_t, util::Promise<Message>>> expired;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto it = pending_.begin(); it != pending_.end();) {
            if (it->second.deadline <= now) {
                abandoned_.insert(it->first);
                expired.emplace_back(it->first, std::move(it->second.promise));
                it = pending_.erase(it);
            } else {
                ++it;
            }
        }
        if (!expired.empty()) note_in_flight(pending_.size());
    }
    if (metrics_.timeouts != nullptr && !expired.empty()) metrics_.timeouts->inc(expired.size());
    for (auto& [id, promise] : expired) {
        promise.set_exception(std::make_exception_ptr(
            TimeoutError("request " + std::to_string(id) + " timed out after " +
                         std::to_string(timeout_ms_) + "ms")));
    }
}

void MuxConnection::complete(Message reply) {
    if (metrics_.frames_received != nullptr) metrics_.frames_received->inc();
    if (metrics_.bytes_received != nullptr) {
        metrics_.bytes_received->inc(Message::kHeaderBytes + reply.payload.size());
    }
    std::optional<util::Promise<Message>> promise;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = pending_.find(reply.correlation);
        if (it != pending_.end()) {
            promise.emplace(std::move(it->second.promise));
            pending_.erase(it);
            note_in_flight(pending_.size());
        } else if (abandoned_.erase(reply.correlation) > 0) {
            // Late reply to a request that already timed out: the waiter
            // is long gone, but the frame itself is well-formed — drop
            // it and keep the connection.
            return;
        } else {
            throw ProtocolError("reply with unknown correlation id " +
                                std::to_string(reply.correlation));
        }
    }
    promise->set_value(std::move(reply));
}

void MuxConnection::fail_all(std::exception_ptr error) {
    if (!error) error = std::make_exception_ptr(IoError("multiplexed connection closed"));
    std::unordered_map<std::uint32_t, Pending> orphaned;
    bool first_death = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!dead_.exchange(true)) {
            death_ = error;
            first_death = true;
        } else {
            error = death_;  // first failure wins; report it consistently
        }
        orphaned.swap(pending_);
        abandoned_.clear();
        note_in_flight(0);
    }
    // Deliberate close() is an expected end of life, not a fatal error.
    if (first_death && !closing_.load() && metrics_.fatal_errors != nullptr) {
        metrics_.fatal_errors->inc();
    }
    for (auto& [id, p] : orphaned) p.promise.set_exception(error);
}

void MuxConnection::note_in_flight(std::size_t n) noexcept {
    if (metrics_.in_flight != nullptr) metrics_.in_flight->set(static_cast<std::int64_t>(n));
}

// ---- TcpListener --------------------------------------------------------

TcpListener::TcpListener(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw_errno("socket");
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        errno = err;
        throw_errno("bind");
    }
    if (::listen(fd_, 16) != 0) {
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        errno = err;
        throw_errno("listen");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        throw_errno("getsockname");
    }
    port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener() { close(); }

TcpConnection TcpListener::accept() {
    TERAPHIM_ASSERT(fd_ >= 0);
    for (;;) {
        const int client = ::accept(fd_, nullptr, nullptr);
        if (client >= 0) return TcpConnection(client);
        if (errno == EINTR) continue;
        throw_errno("accept");
    }
}

void TcpListener::shutdown() {
    // shutdown() on a listening socket forces a blocked accept() to
    // return with an error on Linux; close() alone does not.
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpListener::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

// ---- MessageServer ------------------------------------------------------

MessageServer::MessageServer(std::uint16_t port, Handler handler, const ServerLimits& limits,
                             obs::MetricsRegistry* registry)
    : listener_(port),
      handler_(std::move(handler)),
      limits_(limits),
      connections_total_(registry != nullptr
                             ? &registry->counter("teraphim_server_connections_total")
                             : nullptr),
      connections_dropped_(registry != nullptr
                               ? &registry->counter("teraphim_server_connections_dropped_total")
                               : nullptr),
      frames_total_(registry != nullptr ? &registry->counter("teraphim_server_frames_total")
                                        : nullptr),
      connections_active_(registry != nullptr
                              ? &registry->gauge("teraphim_server_connections_active")
                              : nullptr),
      shed_queue_full_(registry != nullptr
                           ? &registry->counter("teraphim_server_shed_total",
                                                {{"reason", "queue_full"}})
                           : nullptr),
      shed_budget_(registry != nullptr
                       ? &registry->counter("teraphim_server_shed_total",
                                            {{"reason", "budget_expired"}})
                       : nullptr),
      workers_(limits.max_connections),
      // Reject (not Block) on a full dispatch queue: the reader must
      // keep draining its socket to answer Overloaded, so it can never
      // be parked inside try_submit.
      dispatch_(limits.max_inflight,
                util::PoolOptions{limits.dispatch_queue_capacity, util::Overflow::Reject}),
      thread_([this] { serve(); }) {
    if (registry != nullptr) {
        dispatch_.set_metrics(util::PoolMetrics{
            &registry->gauge("teraphim_server_dispatch_queue_depth"),
            &registry->gauge("teraphim_server_dispatch_in_flight"),
            &registry->counter("teraphim_server_dispatch_rejected_total"),
        });
    }
}

MessageServer::MessageServer(std::uint16_t port, Handler handler, std::size_t max_connections,
                             std::size_t max_inflight, obs::MetricsRegistry* registry)
    : MessageServer(port, std::move(handler),
                    [&] {
                        ServerLimits limits;
                        limits.max_connections = max_connections;
                        limits.max_inflight = max_inflight;
                        return limits;
                    }(),
                    registry) {}

MessageServer::~MessageServer() { stop(); }

void MessageServer::serve() {
    while (!stopping_.load()) {
        std::shared_ptr<TcpConnection> conn;
        try {
            // shared_ptr because std::function requires copyable
            // callables; the connection is still owned by exactly one
            // worker task at a time.
            conn = std::make_shared<TcpConnection>(listener_.accept());
        } catch (const IoError&) {
            // The listener was shut down by stop(), or accept failed
            // transiently; either way there is no connection and the
            // loop condition decides whether to exit.
            continue;
        }
        if (stopping_.load()) break;  // accepted during shutdown: discard
        if (connections_total_ != nullptr) connections_total_->inc();
        // try_submit: a pool racing stop() refuses the task instead of
        // asserting; the connection just closes (shared_ptr released).
        if (!workers_.try_submit([this, conn] { serve_connection(conn); })) {
            if (connections_dropped_ != nullptr) connections_dropped_->inc();
        }
    }
}

void MessageServer::serve_connection(const std::shared_ptr<TcpConnection>& conn) {
    {
        // Register the fd for cancellation. Checking stopping_ under the
        // same lock begin_stop() takes closes the race where a
        // connection is accepted concurrently with shutdown but its fd
        // is registered after the wake-everyone sweep.
        std::lock_guard<std::mutex> lock(fds_mu_);
        if (stopping_.load()) return;
        active_fds_.push_back(conn->native_handle());
    }
    if (connections_active_ != nullptr) connections_active_->add(1);
    // Writers (one dispatch task per in-flight request) serialize on a
    // per-connection mutex so interleaved replies never share a frame.
    auto write_mu = std::make_shared<std::mutex>();
    try {
        for (;;) {
            Message request = conn->recv_message();
            if (frames_total_ != nullptr) frames_total_->inc();
            if (request.type == MessageType::Shutdown) {
                Message reply;
                reply.type = MessageType::Shutdown;
                reply.correlation = request.correlation;
                std::lock_guard<std::mutex> lock(*write_mu);
                conn->send_message(reply);
                begin_stop();
                break;
            }
            // Hand the request to the dispatch pool and go straight back
            // to reading: one connection can have many requests in
            // flight, and replies go out whenever their handler finishes
            // — out of order is fine, the correlation id routes them.
            const auto arrival = std::chrono::steady_clock::now();
            const std::uint32_t correlation = request.correlation;
            const bool queued = dispatch_.try_submit(
                [this, conn, write_mu, arrival, request = std::move(request)] {
                    // Shed a request whose deadline budget was spent
                    // while it waited for a worker: the receptionist has
                    // already (or is about to) give up on it, so running
                    // the handler would burn CPU on an answer nobody
                    // reads.
                    if (limits_.shed_expired_budgets && request.budget_ms > 0) {
                        const auto waited =
                            std::chrono::duration_cast<std::chrono::milliseconds>(
                                std::chrono::steady_clock::now() - arrival)
                                .count();
                        if (waited >= static_cast<long long>(request.budget_ms)) {
                            if (shed_budget_ != nullptr) shed_budget_->inc();
                            send_overloaded(*conn, *write_mu, request.correlation,
                                            OverloadedInfo::Reason::BudgetExpired);
                            return;
                        }
                    }
                    Message reply;
                    try {
                        reply = handler_(request);
                    } catch (const Error&) {
                        // A throwing handler severs the connection (fault
                        // injection and admission control rely on this);
                        // shutdown also wakes the reader loop.
                        conn->shutdown_both();
                        return;
                    }
                    reply.correlation = request.correlation;
                    std::lock_guard<std::mutex> lock(*write_mu);
                    try {
                        conn->send_message(reply);
                    } catch (const Error&) {
                        // Peer vanished mid-reply; the reader will notice.
                    }
                });
            if (!queued) {
                // Dispatch queue at capacity (or the pool is stopping):
                // admission control. Answer Overloaded from the reader
                // thread — cheap, no handler work — so the client sheds
                // the request instead of timing out on silence.
                if (shed_queue_full_ != nullptr) shed_queue_full_->inc();
                send_overloaded(*conn, *write_mu, correlation,
                                OverloadedInfo::Reason::QueueFull);
            }
        }
    } catch (const Error&) {
        // Drop this connection but keep serving the others: the client
        // disconnected, sent a malformed frame (ProtocolError from a bad
        // version byte or oversized length field), or stop() cancelled
        // the read. None of these may escape — an uncaught exception
        // here would std::terminate the librarian.
        if (connections_dropped_ != nullptr && !stopping_.load()) connections_dropped_->inc();
    }
    if (connections_active_ != nullptr) connections_active_->add(-1);
    // Deregister *before* conn's fd can be closed, so begin_stop() can
    // never shutdown() a recycled descriptor.
    {
        std::lock_guard<std::mutex> lock(fds_mu_);
        std::erase(active_fds_, conn->native_handle());
    }
    // Sever now so in-flight dispatch tasks fail fast instead of writing
    // into a dead stream; the fd itself closes when the last dispatch
    // task holding this shared_ptr finishes.
    conn->shutdown_both();
}

void MessageServer::send_overloaded(TcpConnection& conn, std::mutex& write_mu,
                                    std::uint32_t correlation, OverloadedInfo::Reason reason) {
    OverloadedInfo info;
    info.reason = reason;
    info.retry_after_ms = limits_.retry_after_hint_ms;
    const Message reply = info.to_message(correlation);
    std::lock_guard<std::mutex> lock(write_mu);
    try {
        conn.send_message(reply);
    } catch (const Error&) {
        // Peer vanished; nothing to shed to.
    }
}

void MessageServer::begin_stop() {
    stopping_.store(true);
    // Wake every blocked thread: the accept loop in accept() on the
    // listener, and each worker in recv_message() on its connection.
    listener_.shutdown();
    std::lock_guard<std::mutex> lock(fds_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
}

void MessageServer::stop() {
    if (!thread_.joinable()) return;
    begin_stop();
    thread_.join();
    // Queued-but-unserved connections run now, observe stopping_, and
    // close immediately; in-flight ones were woken by begin_stop(). The
    // readers drain first (they feed dispatch_), then the handlers.
    workers_.wait_idle();
    dispatch_.wait_idle();
    listener_.close();
}

}  // namespace teraphim::net
