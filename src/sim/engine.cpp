#include "sim/engine.h"

#include <utility>

namespace teraphim::sim {

void Engine::schedule_at(SimTime at, std::function<void()> fn) {
    TERAPHIM_ASSERT_MSG(at >= now_, "cannot schedule into the past");
    queue_.push({at, next_seq_++, std::move(fn)});
}

SimTime Engine::run() {
    while (!queue_.empty()) {
        // priority_queue::top() is const; the function object must be
        // moved out before pop, so copy the metadata and steal the fn.
        Event ev = std::move(const_cast<Event&>(queue_.top()));
        queue_.pop();
        now_ = ev.at;
        ++executed_;
        ev.fn();
    }
    return now_;
}

}  // namespace teraphim::sim
