// Simulated hardware/network topologies for the paper's configurations.
//
// Section 4 evaluates four configurations:
//   Mono-Disk:  one 4-CPU machine, every librarian (and the receptionist)
//               sharing a single disk arm.
//   Multi-Disk: the same machine, one drive per librarian.
//   LAN:        three machines on a shared 10 Mbit ethernet.
//   WAN:        receptionist in Melbourne; librarians in Canberra,
//               Brisbane, Hamilton NZ (Waikato) and Tel Aviv (Israel),
//               with the measured hop counts and ping times of Table 2.
//
// A topology is a declarative spec; SimNetwork instantiates engine
// resources from it and provides message-transfer and disk/CPU access
// for the simulated query executions in dir/deployment.h.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/resource.h"

namespace teraphim::sim {

/// One row of the paper's Table 2.
struct SiteInfo {
    std::string location;
    int hops = 0;
    double ping_seconds = 0.0;        ///< measured round-trip time
    double bytes_per_second = 0.0;    ///< our bandwidth estimate for the link
};

/// The four remote sites of Table 2 (Waikato, Canberra, Brisbane, Israel).
const std::vector<SiteInfo>& wan_sites();

struct LinkSpec {
    std::string name;
    double one_way_latency_seconds = 0.0;
    double bytes_per_second = 1e9;
    bool shared_segment = false;  ///< true: all traffic serialises (ethernet)
};

struct Placement {
    int machine = 0;
    int disk = -1;  ///< -1: dataless (the receptionist in most configs)
    int link = -1;  ///< -1: colocated with the receptionist (no network)
};

struct TopologySpec {
    std::string name;
    std::vector<int> machine_cpus;       ///< CPU count per machine
    std::vector<std::string> machine_names;
    std::size_t num_disks = 0;
    std::vector<LinkSpec> links;
    Placement receptionist;
    std::vector<Placement> librarians;
};

/// Factory functions for the paper's configurations, parameterised by the
/// number of librarians (4 in Tables 3-4; 43 in the robustness study).
TopologySpec mono_disk_topology(std::size_t num_librarians);
TopologySpec multi_disk_topology(std::size_t num_librarians);
TopologySpec lan_topology(std::size_t num_librarians);
TopologySpec wan_topology(std::size_t num_librarians);

/// All four, in the column order of Tables 3-4.
std::vector<TopologySpec> all_topologies(std::size_t num_librarians);

/// Live simulation state for one topology: engine resources plus message
/// transfer between the receptionist and each librarian.
class SimNetwork {
public:
    SimNetwork(Engine& engine, const TopologySpec& spec);

    /// Delivers `bytes` from the receptionist to librarian `i` (or the
    /// reverse — links are symmetric): the sender holds the wire for the
    /// transmission time, then the payload arrives after the propagation
    /// latency. Colocated librarians get a fixed small IPC cost.
    void transfer(std::size_t librarian, std::uint64_t bytes,
                  std::function<void()> on_delivered);

    Resource& librarian_cpu(std::size_t i);
    Resource& librarian_disk(std::size_t i);
    Resource& receptionist_cpu();
    /// The receptionist's disk (for the CI central index). In dataless
    /// configurations this falls back to the shared disk 0.
    Resource& receptionist_disk();

    /// Round-trip time for an empty message to librarian `i` — the
    /// simulated analogue of the paper's "ping" measurements.
    double ping(std::size_t librarian) const;

    const TopologySpec& spec() const { return spec_; }
    std::size_t num_librarians() const { return spec_.librarians.size(); }

    /// Total bytes moved over real (non-colocated) links.
    std::uint64_t network_bytes() const { return network_bytes_; }

private:
    Engine* engine_;
    TopologySpec spec_;
    std::vector<std::unique_ptr<Resource>> machine_cpu_;
    std::vector<std::unique_ptr<Resource>> disks_;
    std::vector<std::unique_ptr<Resource>> link_wires_;
    std::uint64_t network_bytes_ = 0;

    static constexpr double kLocalIpcSeconds = 2.0e-4;
    static constexpr double kLocalIpcBytesPerSecond = 4.0e7;
};

}  // namespace teraphim::sim
