#include "sim/topology.h"

#include "util/error.h"

namespace teraphim::sim {

const std::vector<SiteInfo>& wan_sites() {
    // Hop counts and ping times are Table 2 of the paper, measured from
    // Melbourne at noon local time. Bandwidths are our estimates from the
    // paper's commentary: the New Zealand link is "relatively direct, but
    // of modest bandwidth"; the Israel link "traverses the United States".
    static const std::vector<SiteInfo> sites = {
        {"Waikato", 13, 0.76, 8.0e4},
        {"Canberra", 14, 0.18, 2.5e5},
        {"Brisbane", 16, 0.14, 2.5e5},
        {"Israel", 28, 1.04, 6.0e4},
    };
    return sites;
}

TopologySpec mono_disk_topology(std::size_t num_librarians) {
    TopologySpec spec;
    spec.name = "mono-disk";
    spec.machine_cpus = {4};  // the four-processor SPARC 10
    spec.machine_names = {"sparc10-quad"};
    spec.num_disks = 1;
    spec.receptionist = {0, 0, -1};
    spec.librarians.assign(num_librarians, Placement{0, 0, -1});
    return spec;
}

TopologySpec multi_disk_topology(std::size_t num_librarians) {
    TopologySpec spec;
    spec.name = "multi-disk";
    spec.machine_cpus = {4};
    spec.machine_names = {"sparc10-quad"};
    spec.num_disks = num_librarians;  // one drive per librarian
    spec.receptionist = {0, -1, -1};  // dataless receptionist
    spec.librarians.resize(num_librarians);
    for (std::size_t i = 0; i < num_librarians; ++i) {
        spec.librarians[i] = {0, static_cast<int>(i), -1};
    }
    return spec;
}

TopologySpec lan_topology(std::size_t num_librarians) {
    // Paper layout: a 4-CPU SPARC 10 runs the receptionist and FR; a
    // 2-CPU SPARC 10 runs AP and WSJ; a 2-CPU SPARC 20 runs ZIFF. All on
    // one 10 Mbit ethernet. Extra librarians (the 43-way study) continue
    // round-robin over the two remote machines.
    TopologySpec spec;
    spec.name = "LAN";
    spec.machine_cpus = {4, 2, 2};
    spec.machine_names = {"sparc10-quad", "sparc10-dual", "sparc20-dual"};
    spec.num_disks = num_librarians;
    // One shared segment: every remote transfer serialises on the cable.
    spec.links.push_back({"ethernet-10mbit", 0.0005, 1.25e6, true});
    spec.receptionist = {0, -1, -1};
    spec.librarians.resize(num_librarians);
    for (std::size_t i = 0; i < num_librarians; ++i) {
        // Librarian 2 (FR in the paper's ordering AP, WSJ, FR, ZIFF)
        // shares the receptionist machine; others alternate remotely.
        Placement p;
        p.disk = static_cast<int>(i);
        switch (i % 4) {
            case 0: p.machine = 1; p.link = 0; break;  // AP
            case 1: p.machine = 1; p.link = 0; break;  // WSJ
            case 2: p.machine = 0; p.link = -1; break; // FR (colocated)
            default: p.machine = 2; p.link = 0; break; // ZIFF
        }
        spec.librarians[i] = p;
    }
    return spec;
}

TopologySpec wan_topology(std::size_t num_librarians) {
    // Receptionist in Melbourne; AP in Brisbane, WSJ in Tel Aviv, FR in
    // Hamilton (Waikato), ZIFF in Canberra — Section 4 "WAN".
    TopologySpec spec;
    spec.name = "WAN";
    const auto& sites = wan_sites();
    spec.machine_cpus.push_back(4);  // Melbourne
    spec.machine_names.push_back("melbourne");
    for (const SiteInfo& site : sites) {
        spec.machine_cpus.push_back(2);
        spec.machine_names.push_back(site.location);
        spec.links.push_back(
            {site.location, site.ping_seconds / 2.0, site.bytes_per_second, false});
    }
    spec.num_disks = num_librarians;
    spec.receptionist = {0, -1, -1};
    spec.librarians.resize(num_librarians);
    // Paper's subcollection order is AP, WSJ, FR, ZIFF.
    static constexpr int kSiteOf[4] = {2, 3, 0, 1};  // Brisbane, Israel, Waikato, Canberra
    for (std::size_t i = 0; i < num_librarians; ++i) {
        const int site = kSiteOf[i % 4];
        spec.librarians[i] = {1 + site, static_cast<int>(i), site};
    }
    return spec;
}

std::vector<TopologySpec> all_topologies(std::size_t num_librarians) {
    return {mono_disk_topology(num_librarians), multi_disk_topology(num_librarians),
            lan_topology(num_librarians), wan_topology(num_librarians)};
}

SimNetwork::SimNetwork(Engine& engine, const TopologySpec& spec)
    : engine_(&engine), spec_(spec) {
    TERAPHIM_ASSERT(!spec_.machine_cpus.empty());
    for (std::size_t m = 0; m < spec_.machine_cpus.size(); ++m) {
        machine_cpu_.push_back(std::make_unique<Resource>(
            engine, static_cast<std::size_t>(spec_.machine_cpus[m]),
            spec_.machine_names.size() > m ? spec_.machine_names[m] : "machine"));
    }
    for (std::size_t d = 0; d < spec_.num_disks; ++d) {
        disks_.push_back(std::make_unique<Resource>(engine, 1, "disk" + std::to_string(d)));
    }
    for (const LinkSpec& link : spec_.links) {
        link_wires_.push_back(std::make_unique<Resource>(engine, 1, link.name));
    }
}

void SimNetwork::transfer(std::size_t librarian, std::uint64_t bytes,
                          std::function<void()> on_delivered) {
    TERAPHIM_ASSERT(librarian < spec_.librarians.size());
    const int link = spec_.librarians[librarian].link;
    if (link < 0) {
        // Same machine: a memcpy through a pipe, effectively.
        engine_->schedule_in(
            kLocalIpcSeconds + static_cast<double>(bytes) / kLocalIpcBytesPerSecond,
            std::move(on_delivered));
        return;
    }
    const LinkSpec& ls = spec_.links[static_cast<std::size_t>(link)];
    network_bytes_ += bytes;
    const double tx = static_cast<double>(bytes) / ls.bytes_per_second;
    // The sender occupies the wire for the transmission time; the payload
    // lands one propagation delay after it leaves the wire.
    link_wires_[static_cast<std::size_t>(link)]->use(
        tx, [this, latency = ls.one_way_latency_seconds,
             done = std::move(on_delivered)]() mutable {
            engine_->schedule_in(latency, std::move(done));
        });
}

Resource& SimNetwork::librarian_cpu(std::size_t i) {
    TERAPHIM_ASSERT(i < spec_.librarians.size());
    return *machine_cpu_[static_cast<std::size_t>(spec_.librarians[i].machine)];
}

Resource& SimNetwork::librarian_disk(std::size_t i) {
    TERAPHIM_ASSERT(i < spec_.librarians.size());
    const int disk = spec_.librarians[i].disk;
    TERAPHIM_ASSERT(disk >= 0);
    return *disks_[static_cast<std::size_t>(disk)];
}

Resource& SimNetwork::receptionist_cpu() {
    return *machine_cpu_[static_cast<std::size_t>(spec_.receptionist.machine)];
}

Resource& SimNetwork::receptionist_disk() {
    const int disk = spec_.receptionist.disk;
    if (disk >= 0) return *disks_[static_cast<std::size_t>(disk)];
    TERAPHIM_ASSERT_MSG(!disks_.empty(), "no disks in topology");
    return *disks_[0];
}

double SimNetwork::ping(std::size_t librarian) const {
    TERAPHIM_ASSERT(librarian < spec_.librarians.size());
    const int link = spec_.librarians[librarian].link;
    if (link < 0) return 2.0 * kLocalIpcSeconds;
    return 2.0 * spec_.links[static_cast<std::size_t>(link)].one_way_latency_seconds;
}

}  // namespace teraphim::sim
