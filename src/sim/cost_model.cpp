#include "sim/cost_model.h"

// Header-only today; this translation unit anchors the module so future
// calibration tables can live out-of-line without build changes.
