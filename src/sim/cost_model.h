// Cost model: converting measured work into simulated seconds.
//
// The distributed executions in dir/ run the *real* retrieval code (so
// scores, rankings and effectiveness are exact) while recording work
// counters: postings decoded, index bits fetched, lists opened, messages
// and bytes exchanged, documents read. This model prices that work on
// mid-1990s hardware — SPARC-class CPUs and ~2 MB/s disks with ~15 ms
// positioning — which is what the paper ran on.
//
// `workload_scale` compensates for corpus size: the paper indexes TREC
// disk two (~742,000 documents); the synthetic corpus is smaller, so
// per-query index work is scaled by (paper docs / corpus docs) to put
// simulated times in the same regime as Tables 3-4. Scale 1.0 prices the
// synthetic corpus as-is. Document-fetch work (k documents regardless of
// collection size) is never scaled.
#pragma once

#include <cstdint>

namespace teraphim::sim {

struct CostModel {
    // --- CPU ----------------------------------------------------------
    double seconds_per_posting = 1.0e-6;       ///< decode + accumulate
    double seconds_per_term_lookup = 2.0e-4;   ///< vocabulary probe
    double seconds_per_merge_item = 2.0e-6;    ///< receptionist merge heap op
    double seconds_per_candidate = 8.0e-6;     ///< CI per-candidate seek logic
    double seconds_per_message = 1.0e-3;       ///< protocol handling per message
    double seconds_per_doc_decode = 2.0e-3;    ///< Huffman decode of one document
    double query_parse_seconds = 5.0e-3;       ///< tokenise + stop + weight query

    // --- Disk ---------------------------------------------------------
    double disk_seek_seconds = 0.012;
    double disk_bytes_per_second = 2.0e6;

    // --- Network protocol ------------------------------------------------
    /// Extra round trips paid before each request message (TCP connection
    /// establishment / session handshake). The paper's WAN analysis shows
    /// precisely this cost dominating: "handshaking should be kept to an
    /// absolute minimum".
    double tcp_setup_round_trips = 1.0;

    // --- Scaling ------------------------------------------------------
    /// Multiplier on collection-size-dependent work (list bytes, postings
    /// decoded). Per-query fixed work — seeks per list, vocabulary
    /// probes, messages, the k fetched documents — does NOT grow with
    /// collection size and is never scaled.
    double workload_scale = 1.0;

    /// Disk service time for reading `bytes` with `seeks` repositionings.
    /// Bytes grow with the collection (scaled); the number of list/vocab
    /// seeks is per-query fixed (unscaled).
    double index_disk_time(std::uint64_t bytes, std::uint64_t seeks) const {
        return static_cast<double>(seeks) * disk_seek_seconds +
               workload_scale * static_cast<double>(bytes) / disk_bytes_per_second;
    }

    /// CPU time for inverted-list processing.
    double index_cpu_time(std::uint64_t postings, std::uint64_t term_lookups) const {
        return workload_scale * static_cast<double>(postings) * seconds_per_posting +
               static_cast<double>(term_lookups) * seconds_per_term_lookup;
    }

    /// CPU time for CI candidate scoring at a librarian.
    double candidate_cpu_time(std::uint64_t postings, std::uint64_t candidates,
                              std::uint64_t term_lookups) const {
        return workload_scale * static_cast<double>(postings) * seconds_per_posting +
               static_cast<double>(candidates) * seconds_per_candidate +
               static_cast<double>(term_lookups) * seconds_per_term_lookup;
    }

    /// Disk time for fetching documents (never workload-scaled: the
    /// number of answers is k in every configuration).
    double fetch_disk_time(std::uint64_t bytes, std::uint64_t docs) const {
        return static_cast<double>(docs) * disk_seek_seconds +
               static_cast<double>(bytes) / disk_bytes_per_second;
    }

    double merge_cpu_time(std::uint64_t items) const {
        return static_cast<double>(items) * seconds_per_merge_item;
    }
};

}  // namespace teraphim::sim
