#include "sim/resource.h"

#include <algorithm>

namespace teraphim::sim {

Resource::Resource(Engine& engine, std::size_t capacity, std::string name)
    : engine_(&engine), capacity_(capacity), name_(std::move(name)) {
    TERAPHIM_ASSERT(capacity_ >= 1);
}

void Resource::use(SimTime service_time, std::function<void()> on_done) {
    TERAPHIM_ASSERT(service_time >= 0.0);
    Job job{service_time, engine_->now(), std::move(on_done)};
    if (busy_ < capacity_) {
        start(std::move(job));
    } else {
        queue_.push_back(std::move(job));
        max_queue_ = std::max(max_queue_, queue_.size());
    }
}

void Resource::start(Job job) {
    ++busy_;
    busy_time_ += job.service_time;
    wait_time_ += engine_->now() - job.enqueued_at;
    ++jobs_served_;
    engine_->schedule_in(job.service_time,
                         [this, done = std::move(job.on_done)]() mutable { finish(std::move(done)); });
}

void Resource::finish(std::function<void()> on_done) {
    --busy_;
    if (!queue_.empty()) {
        Job next = std::move(queue_.front());
        queue_.pop_front();
        start(std::move(next));
    }
    if (on_done) on_done();
}

}  // namespace teraphim::sim
