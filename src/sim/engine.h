// Discrete-event simulation core.
//
// The paper's timing results (Tables 3 and 4) come from real SPARC
// machines on a real ethernet and real Internet links. Those are
// reproduced here with a small discrete-event simulator: callbacks
// scheduled on a virtual clock, plus FIFO resources (sim/resource.h)
// modelling disks, CPU pools and shared network segments. The simulator
// is deterministic: equal schedules yield equal clocks, bit for bit.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/error.h"

namespace teraphim::sim {

/// Simulated seconds.
using SimTime = double;

class Engine {
public:
    /// Schedules `fn` to run at absolute time `at` (>= now()). Events at
    /// equal times run in scheduling order (stable FIFO tie-break).
    void schedule_at(SimTime at, std::function<void()> fn);

    /// Schedules `fn` after a delay from the current time.
    void schedule_in(SimTime delay, std::function<void()> fn) {
        schedule_at(now_ + delay, std::move(fn));
    }

    /// Runs until the event queue drains. Returns the final clock.
    SimTime run();

    SimTime now() const { return now_; }

    /// Events executed so far (test/debug aid).
    std::uint64_t events_executed() const { return executed_; }

private:
    struct Event {
        SimTime at;
        std::uint64_t seq;
        std::function<void()> fn;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    SimTime now_ = 0.0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
};

}  // namespace teraphim::sim
