// FIFO-queued resources for the simulator.
//
// A Resource models `capacity` identical servers: jobs hold one server
// for a fixed service time and queue first-come-first-served when all
// servers are busy. A single-server Resource models a disk arm or a
// shared ethernet segment; a four-server Resource models the paper's
// four-processor SPARC 10.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/engine.h"

namespace teraphim::sim {

class Resource {
public:
    Resource(Engine& engine, std::size_t capacity, std::string name = "");

    /// Enqueues a job needing one server for `service_time` simulated
    /// seconds; `on_done` fires when the job completes.
    void use(SimTime service_time, std::function<void()> on_done);

    const std::string& name() const { return name_; }
    std::size_t capacity() const { return capacity_; }

    // Utilisation statistics.
    SimTime total_busy_time() const { return busy_time_; }
    std::uint64_t jobs_served() const { return jobs_served_; }
    std::size_t max_queue_length() const { return max_queue_; }
    SimTime total_wait_time() const { return wait_time_; }

private:
    struct Job {
        SimTime service_time;
        SimTime enqueued_at;
        std::function<void()> on_done;
    };

    void start(Job job);
    void finish(std::function<void()> on_done);

    Engine* engine_;
    std::size_t capacity_;
    std::string name_;
    std::size_t busy_ = 0;
    std::deque<Job> queue_;
    SimTime busy_time_ = 0.0;
    SimTime wait_time_ = 0.0;
    std::uint64_t jobs_served_ = 0;
    std::size_t max_queue_ = 0;
};

}  // namespace teraphim::sim
