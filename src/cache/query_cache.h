// The federation's caches: complete ranked answers, CV term
// statistics, and CI group expansions, all keyed on canonical
// fingerprints and invalidated by collection generation.
//
// What is cached, and what never is:
//   * QueryCache — the merged global ranking of a completed query. The
//     key fingerprints everything that affects the ranking (mode,
//     similarity measure, k, CI group geometry, skip options, and the
//     sorted stemmed (term, f_qt) multiset). Degraded answers — where
//     a librarian's contribution is missing — are never inserted: the
//     cache must only ever reproduce what a fault-free federation
//     would compute.
//   * TermStatsCache — per-term CV global statistics (w_qt, f_t, the
//     holder set) and per-query CI group expansions (the candidate
//     lists sent to each librarian plus the central work counters, so
//     a cached expansion replays an identical QueryTrace).
//   * Fetched document payloads are never cached; the document store
//     is already the cheap local path and fetch shape is user-visible.
//
// Both caches are flushed wholesale when the receptionist observes a
// collection generation change (see dir/receptionist.h) — entries are
// only ever valid against the exact collection snapshot they were
// computed from.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cache/lru.h"
#include "dir/merge.h"
#include "obs/metrics.h"
#include "rank/similarity.h"

namespace teraphim::cache {

/// Cache budgets carried in dir::ReceptionistOptions. Disabled by
/// default so federations behave exactly as before unless asked.
/// Setting any entry or byte budget to zero disables that cache
/// individually (a configured no-op, never a divide-by-zero).
struct CacheOptions {
    bool enabled = false;  ///< master switch; false = no cache objects at all
    std::size_t shards = 8;

    // Complete ranked answers.
    std::size_t query_entries = 4096;
    std::uint64_t query_bytes = 8u << 20;
    double query_ttl_ms = 0.0;  ///< 0 = generation invalidation only

    // CV per-term global statistics.
    std::size_t term_entries = 1u << 16;
    std::uint64_t term_bytes = 8u << 20;

    // CI group expansions (per-query candidate lists).
    std::size_t expansion_entries = 2048;
    std::uint64_t expansion_bytes = 16u << 20;
};

/// Canonical fingerprint of a parsed query: `prefix` (the receptionist
/// pre-renders everything ranking-relevant about its own configuration)
/// + answer depth + the (term, f_qt) pairs sorted by term, so "b a" and
/// "a b" share an entry. Control characters separate fields; terms have
/// been through the pipeline and cannot contain them.
std::string query_fingerprint(std::string_view prefix, std::size_t depth,
                              std::span<const rank::QueryTerm> terms);

/// A complete cached answer: the merged global ranking. Stored behind
/// shared_ptr<const ...> so a hit hands out the entry without copying
/// under the shard lock.
struct CachedAnswer {
    std::vector<dir::GlobalResult> ranking;

    std::uint64_t bytes() const {
        return sizeof(CachedAnswer) + ranking.size() * sizeof(dir::GlobalResult);
    }
};

/// Cached global statistics for one (term, f_qt) pair in CV mode.
/// Everything global_weights() derives per term, so a hit reproduces
/// the exact weighted query — and the exact wire bytes — of a miss.
struct TermStats {
    double weight = 0.0;  ///< w_qt under the global collection statistics
    std::uint64_t doc_frequency = 0;
    std::vector<std::uint32_t> holders;  ///< librarians with f_t > 0

    std::uint64_t bytes() const {
        return sizeof(TermStats) + holders.size() * sizeof(std::uint32_t);
    }
};

/// Cached CI step-1/2 output: which local documents each librarian must
/// score, plus the central work counters so the replayed QueryTrace is
/// indistinguishable from a fresh central ranking.
struct Expansion {
    std::vector<std::vector<std::uint32_t>> candidates;  ///< per librarian, sorted
    std::uint64_t total_candidates = 0;
    std::uint64_t central_postings = 0;
    std::uint64_t central_index_bits = 0;
    std::uint64_t central_lists = 0;

    std::uint64_t bytes() const {
        std::uint64_t b = sizeof(Expansion);
        for (const auto& c : candidates)
            b += sizeof(std::vector<std::uint32_t>) + c.size() * sizeof(std::uint32_t);
        return b;
    }
};

/// Complete-answer cache. Thin wrapper over ShardedLru that sizes
/// entries, mirrors hit/miss/eviction counts into the teraphim_cache_*
/// metric families (label cache="query"), and exposes flush() for
/// generation invalidation.
class QueryCache {
public:
    explicit QueryCache(const CacheOptions& options);

    bool enabled() const { return lru_.enabled(); }

    std::shared_ptr<const CachedAnswer> lookup(const std::string& key);
    void insert(const std::string& key, std::shared_ptr<const CachedAnswer> answer);

    /// Drops everything (collection generation changed).
    void flush();

    CacheStats stats() const { return lru_.stats(); }

private:
    void sync_gauges();

    ShardedLru<std::string, std::shared_ptr<const CachedAnswer>> lru_;
    obs::Counter* hits_ = nullptr;
    obs::Counter* misses_ = nullptr;
    obs::Counter* evictions_ = nullptr;
    obs::Gauge* entries_ = nullptr;
    obs::Gauge* bytes_ = nullptr;
};

/// Term-statistics + expansion cache (labels cache="term_stats" and
/// cache="expansion"). Two LRUs under one roof because they share a
/// lifecycle: both memoize derivatives of the prepared collection
/// snapshot and both flush on a generation change.
class TermStatsCache {
public:
    explicit TermStatsCache(const CacheOptions& options);

    bool enabled() const { return terms_.enabled() || expansions_.enabled(); }
    bool terms_enabled() const { return terms_.enabled(); }
    bool expansions_enabled() const { return expansions_.enabled(); }

    std::shared_ptr<const TermStats> lookup_term(const std::string& key);
    void insert_term(const std::string& key, std::shared_ptr<const TermStats> stats);

    std::shared_ptr<const Expansion> lookup_expansion(const std::string& key);
    void insert_expansion(const std::string& key, std::shared_ptr<const Expansion> expansion);

    void flush();

    CacheStats term_stats() const { return terms_.stats(); }
    CacheStats expansion_stats() const { return expansions_.stats(); }

private:
    struct Handles {
        obs::Counter* hits = nullptr;
        obs::Counter* misses = nullptr;
        obs::Counter* evictions = nullptr;
        obs::Gauge* entries = nullptr;
        obs::Gauge* bytes = nullptr;
    };
    static Handles resolve(std::string_view cache_label);

    template <typename Value>
    static std::shared_ptr<const Value> record_lookup(
        ShardedLru<std::string, std::shared_ptr<const Value>>& lru, const Handles& h,
        const std::string& key);
    template <typename Value>
    static void record_insert(ShardedLru<std::string, std::shared_ptr<const Value>>& lru,
                              const Handles& h, const std::string& key,
                              std::shared_ptr<const Value> value);

    ShardedLru<std::string, std::shared_ptr<const TermStats>> terms_;
    ShardedLru<std::string, std::shared_ptr<const Expansion>> expansions_;
    Handles term_handles_;
    Handles expansion_handles_;
};

}  // namespace teraphim::cache
