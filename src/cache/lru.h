// A generic sharded LRU cache for the federation's hot paths.
//
// The receptionist's fan-out serves many user queries concurrently, so
// the cache must take traffic from many threads without becoming the
// new bottleneck: the key space is split across independently locked
// shards (one mutex, one hash map, one recency list each), and the
// hit/miss/eviction statistics are relaxed atomics so readers never
// contend with the shard locks.
//
// Eviction is governed by two budgets — an entry count and a byte
// budget — applied per shard (total budget divided evenly). An entry
// carries an explicit byte size supplied by the caller at insertion, so
// heterogenous values (whole query answers next to single term stats)
// are accounted honestly. An optional TTL expires entries lazily at
// lookup time.
//
// A cache configured with a zero entry or byte budget (or zero shards)
// is a valid no-op: every lookup misses without counting, every insert
// is discarded, and no division by the shard count ever happens. This
// is what lets callers compile the cache out with configuration alone.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace teraphim::cache {

/// Snapshot of one cache's counters. hits/misses/evictions are
/// monotonic; entries/bytes are the current residency.
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;  ///< budget evictions + TTL expirations
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
};

/// Budgets for one ShardedLru. A zero entry or byte budget disables the
/// cache entirely (see file comment); zero shards are clamped to one.
struct LruConfig {
    std::size_t shards = 8;
    std::size_t max_entries = 0;
    std::uint64_t max_bytes = 0;
    double ttl_ms = 0.0;  ///< 0 = entries never expire
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLru {
public:
    explicit ShardedLru(LruConfig config) : config_(config) {
        if (config_.shards == 0) config_.shards = 1;
        if (config_.shards > config_.max_entries) {
            // Never spread the budget so thin a shard rounds to zero
            // capacity (and a disabled cache allocates nothing at all).
            config_.shards = config_.max_entries == 0 ? 1 : config_.max_entries;
        }
        if (!enabled()) return;
        entries_per_shard_ = config_.max_entries / config_.shards;
        bytes_per_shard_ = config_.max_bytes / config_.shards;
        shards_ = std::make_unique<Shard[]>(config_.shards);
    }

    /// Whether the configuration admits any entry at all. A disabled
    /// cache is a no-op: lookups miss silently, inserts are discarded.
    bool enabled() const { return config_.max_entries > 0 && config_.max_bytes > 0; }

    /// Returns the value and refreshes its recency, or nullopt. An
    /// entry past its TTL is erased and counted as a miss + eviction.
    std::optional<Value> get(const Key& key) {
        if (!enabled()) return std::nullopt;
        Shard& sh = shard(key);
        std::lock_guard<std::mutex> lock(sh.mu);
        const auto it = sh.map.find(key);
        if (it == sh.map.end()) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return std::nullopt;
        }
        if (config_.ttl_ms > 0.0 && elapsed_ms(it->second->inserted) > config_.ttl_ms) {
            drop(sh, it->second);
            evictions_.fetch_add(1, std::memory_order_relaxed);
            misses_.fetch_add(1, std::memory_order_relaxed);
            return std::nullopt;
        }
        sh.lru.splice(sh.lru.begin(), sh.lru, it->second);  // most recent first
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second->value;
    }

    /// Inserts (or replaces) `key`, charging `bytes` against the byte
    /// budget, then evicts least-recently-used entries until both shard
    /// budgets hold again. Returns how many entries were evicted. An
    /// entry larger than the whole shard budget is evicted immediately
    /// — the cache never holds it, but the call is still safe.
    std::size_t put(const Key& key, Value value, std::uint64_t bytes) {
        if (!enabled()) return 0;
        Shard& sh = shard(key);
        std::lock_guard<std::mutex> lock(sh.mu);
        const auto it = sh.map.find(key);
        if (it != sh.map.end()) {
            bytes_.fetch_sub(it->second->bytes, std::memory_order_relaxed);
            sh.bytes -= it->second->bytes;
            it->second->value = std::move(value);
            it->second->bytes = bytes;
            it->second->inserted = Clock::now();
            sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
        } else {
            sh.lru.push_front(Entry{key, std::move(value), bytes, Clock::now()});
            sh.map.emplace(key, sh.lru.begin());
            entries_.fetch_add(1, std::memory_order_relaxed);
        }
        sh.bytes += bytes;
        bytes_.fetch_add(bytes, std::memory_order_relaxed);

        std::size_t evicted = 0;
        while (!sh.lru.empty() &&
               (sh.lru.size() > entries_per_shard_ || sh.bytes > bytes_per_shard_)) {
            drop(sh, std::prev(sh.lru.end()));
            ++evicted;
        }
        evictions_.fetch_add(evicted, std::memory_order_relaxed);
        return evicted;
    }

    /// Discards every entry (generation invalidation). Flushed entries
    /// are not counted as evictions — they were not displaced by
    /// pressure, they were declared stale.
    void clear() {
        if (!enabled()) return;
        for (std::size_t i = 0; i < config_.shards; ++i) {
            Shard& sh = shards_[i];
            std::lock_guard<std::mutex> lock(sh.mu);
            entries_.fetch_sub(sh.lru.size(), std::memory_order_relaxed);
            bytes_.fetch_sub(sh.bytes, std::memory_order_relaxed);
            sh.map.clear();
            sh.lru.clear();
            sh.bytes = 0;
        }
    }

    CacheStats stats() const {
        CacheStats s;
        s.hits = hits_.load(std::memory_order_relaxed);
        s.misses = misses_.load(std::memory_order_relaxed);
        s.evictions = evictions_.load(std::memory_order_relaxed);
        s.entries = entries_.load(std::memory_order_relaxed);
        s.bytes = bytes_.load(std::memory_order_relaxed);
        return s;
    }

    const LruConfig& config() const { return config_; }

private:
    using Clock = std::chrono::steady_clock;

    struct Entry {
        Key key;
        Value value;
        std::uint64_t bytes = 0;
        Clock::time_point inserted;
    };

    struct Shard {
        std::mutex mu;
        std::list<Entry> lru;  ///< front = most recently used
        std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> map;
        std::uint64_t bytes = 0;  ///< guarded by mu
    };

    Shard& shard(const Key& key) {
        // Re-mix the hash so shard choice is independent of the bucket
        // choice the per-shard unordered_map makes with the same hash.
        std::uint64_t h = static_cast<std::uint64_t>(Hash{}(key));
        h ^= h >> 33;
        h *= 0xFF51AFD7ED558CCDULL;
        h ^= h >> 33;
        return shards_[h % config_.shards];
    }

    /// Removes one entry from its shard (shard lock held by caller).
    void drop(Shard& sh, typename std::list<Entry>::iterator pos) {
        sh.bytes -= pos->bytes;
        bytes_.fetch_sub(pos->bytes, std::memory_order_relaxed);
        entries_.fetch_sub(1, std::memory_order_relaxed);
        sh.map.erase(pos->key);
        sh.lru.erase(pos);
    }

    static double elapsed_ms(Clock::time_point since) {
        return std::chrono::duration<double, std::milli>(Clock::now() - since).count();
    }

    LruConfig config_;
    std::size_t entries_per_shard_ = 0;
    std::uint64_t bytes_per_shard_ = 0;
    std::unique_ptr<Shard[]> shards_;

    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> entries_{0};
    std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace teraphim::cache
