#include "cache/query_cache.h"

#include <algorithm>

namespace teraphim::cache {
namespace {

// Field and record separators for fingerprints. The term pipeline
// lower-cases and strips to letter runs, so neither can occur in a
// stemmed term.
constexpr char kField = '\x1f';
constexpr char kRecord = '\x1e';

LruConfig query_lru_config(const CacheOptions& o) {
    LruConfig c;
    c.shards = o.shards;
    c.max_entries = o.enabled ? o.query_entries : 0;
    c.max_bytes = o.enabled ? o.query_bytes : 0;
    c.ttl_ms = o.query_ttl_ms;
    return c;
}

LruConfig term_lru_config(const CacheOptions& o) {
    LruConfig c;
    c.shards = o.shards;
    c.max_entries = o.enabled ? o.term_entries : 0;
    c.max_bytes = o.enabled ? o.term_bytes : 0;
    return c;
}

LruConfig expansion_lru_config(const CacheOptions& o) {
    LruConfig c;
    c.shards = o.shards;
    c.max_entries = o.enabled ? o.expansion_entries : 0;
    c.max_bytes = o.enabled ? o.expansion_bytes : 0;
    return c;
}

}  // namespace

std::string query_fingerprint(std::string_view prefix, std::size_t depth,
                              std::span<const rank::QueryTerm> terms) {
    // parse_query folds duplicates, so terms are distinct and sorting
    // by term alone is a total order; the canonical key is independent
    // of the order terms appeared in the query text.
    std::vector<const rank::QueryTerm*> sorted;
    sorted.reserve(terms.size());
    for (const auto& t : terms) sorted.push_back(&t);
    std::sort(sorted.begin(), sorted.end(),
              [](const rank::QueryTerm* a, const rank::QueryTerm* b) { return a->term < b->term; });

    std::string key;
    key.reserve(prefix.size() + 16 + terms.size() * 12);
    key.append(prefix);
    key += kRecord;
    key += std::to_string(depth);
    for (const auto* t : sorted) {
        key += kRecord;
        key += t->term;
        key += kField;
        key += std::to_string(t->fqt);
    }
    return key;
}

QueryCache::QueryCache(const CacheOptions& options) : lru_(query_lru_config(options)) {
    if (auto* reg = obs::global(); reg && enabled()) {
        const obs::Labels labels{{"cache", "query"}};
        hits_ = &reg->counter("teraphim_cache_hits_total", labels);
        misses_ = &reg->counter("teraphim_cache_misses_total", labels);
        evictions_ = &reg->counter("teraphim_cache_evictions_total", labels);
        entries_ = &reg->gauge("teraphim_cache_entries", labels);
        bytes_ = &reg->gauge("teraphim_cache_bytes", labels);
    }
}

std::shared_ptr<const CachedAnswer> QueryCache::lookup(const std::string& key) {
    auto found = lru_.get(key);
    if (!found) {
        if (misses_) misses_->inc();
        return nullptr;
    }
    if (hits_) hits_->inc();
    return *found;
}

void QueryCache::insert(const std::string& key, std::shared_ptr<const CachedAnswer> answer) {
    if (!answer) return;
    const std::uint64_t size = key.size() + answer->bytes();
    const std::size_t evicted = lru_.put(key, std::move(answer), size);
    if (evictions_ && evicted > 0) evictions_->inc(evicted);
    sync_gauges();
}

void QueryCache::flush() {
    lru_.clear();
    sync_gauges();
}

void QueryCache::sync_gauges() {
    if (!entries_) return;
    const CacheStats s = lru_.stats();
    entries_->set(static_cast<std::int64_t>(s.entries));
    bytes_->set(static_cast<std::int64_t>(s.bytes));
}

TermStatsCache::TermStatsCache(const CacheOptions& options)
    : terms_(term_lru_config(options)), expansions_(expansion_lru_config(options)) {
    if (terms_.enabled()) term_handles_ = resolve("term_stats");
    if (expansions_.enabled()) expansion_handles_ = resolve("expansion");
}

TermStatsCache::Handles TermStatsCache::resolve(std::string_view cache_label) {
    Handles h;
    auto* reg = obs::global();
    if (!reg) return h;
    const obs::Labels labels{{"cache", std::string(cache_label)}};
    h.hits = &reg->counter("teraphim_cache_hits_total", labels);
    h.misses = &reg->counter("teraphim_cache_misses_total", labels);
    h.evictions = &reg->counter("teraphim_cache_evictions_total", labels);
    h.entries = &reg->gauge("teraphim_cache_entries", labels);
    h.bytes = &reg->gauge("teraphim_cache_bytes", labels);
    return h;
}

template <typename Value>
std::shared_ptr<const Value> TermStatsCache::record_lookup(
    ShardedLru<std::string, std::shared_ptr<const Value>>& lru, const Handles& h,
    const std::string& key) {
    auto found = lru.get(key);
    if (!found) {
        if (h.misses) h.misses->inc();
        return nullptr;
    }
    if (h.hits) h.hits->inc();
    return *found;
}

template <typename Value>
void TermStatsCache::record_insert(ShardedLru<std::string, std::shared_ptr<const Value>>& lru,
                                   const Handles& h, const std::string& key,
                                   std::shared_ptr<const Value> value) {
    if (!value) return;
    const std::uint64_t size = key.size() + value->bytes();
    const std::size_t evicted = lru.put(key, std::move(value), size);
    if (h.evictions && evicted > 0) h.evictions->inc(evicted);
    if (h.entries) {
        const CacheStats s = lru.stats();
        h.entries->set(static_cast<std::int64_t>(s.entries));
        h.bytes->set(static_cast<std::int64_t>(s.bytes));
    }
}

std::shared_ptr<const TermStats> TermStatsCache::lookup_term(const std::string& key) {
    return record_lookup(terms_, term_handles_, key);
}

void TermStatsCache::insert_term(const std::string& key, std::shared_ptr<const TermStats> stats) {
    record_insert(terms_, term_handles_, key, std::move(stats));
}

std::shared_ptr<const Expansion> TermStatsCache::lookup_expansion(const std::string& key) {
    return record_lookup(expansions_, expansion_handles_, key);
}

void TermStatsCache::insert_expansion(const std::string& key,
                                      std::shared_ptr<const Expansion> expansion) {
    record_insert(expansions_, expansion_handles_, key, std::move(expansion));
}

void TermStatsCache::flush() {
    terms_.clear();
    expansions_.clear();
    for (const Handles* h : {&term_handles_, &expansion_handles_}) {
        if (h->entries) {
            h->entries->set(0);
            h->bytes->set(0);
        }
    }
}

}  // namespace teraphim::cache
