// Boolean query evaluation.
//
// Section 1 of the paper contrasts ranking with Boolean querying, where
// "independent servers execute the query on each of the subcollections,
// and the overall result set is simply the union of the individual
// result sets". This module supplies that baseline query model: a
// recursive-descent parser for AND / OR / NOT with parentheses, and an
// evaluator over the inverted file producing exact document sets.
//
// Grammar (case-insensitive keywords; bare adjacency means AND):
//   expr   := orexpr
//   orexpr := andexpr ( OR andexpr )*
//   andexpr:= unary ( [AND] unary )*
//   unary  := NOT unary | '(' expr ')' | term
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "index/inverted_index.h"
#include "text/pipeline.h"

namespace teraphim::rank {

/// AST node for a parsed Boolean query.
struct BooleanNode {
    enum class Kind { Term, And, Or, Not };

    Kind kind = Kind::Term;
    std::string term;  // Kind::Term only
    std::unique_ptr<BooleanNode> left;
    std::unique_ptr<BooleanNode> right;  // unused by Not

    /// Human-readable rendering (tests, debugging).
    std::string to_string() const;
};

/// Parses a Boolean expression; terms are normalised through `pipeline`.
/// Throws DataError on syntax errors or when every term is stopped away.
std::unique_ptr<BooleanNode> parse_boolean(std::string_view query,
                                           const text::Pipeline& pipeline);

/// Evaluates the query against one index: a sorted list of matching
/// document numbers. NOT complements against [0, N).
std::vector<std::uint32_t> evaluate_boolean(const BooleanNode& node,
                                            const index::InvertedIndex& index);

/// Convenience: parse then evaluate.
std::vector<std::uint32_t> boolean_search(std::string_view query,
                                          const index::InvertedIndex& index,
                                          const text::Pipeline& pipeline);

// Sorted-set primitives, exposed for testing and for the distributed
// union in dir/ (Boolean results from several librarians are unioned).
std::vector<std::uint32_t> set_intersect(std::span<const std::uint32_t> a,
                                         std::span<const std::uint32_t> b);
std::vector<std::uint32_t> set_union(std::span<const std::uint32_t> a,
                                     std::span<const std::uint32_t> b);
std::vector<std::uint32_t> set_difference(std::span<const std::uint32_t> a,
                                          std::span<const std::uint32_t> b);

}  // namespace teraphim::rank
