// Similarity measures for ranked retrieval.
//
// The paper's experiments use "the cosine measure with logarithmic
// in-document frequency" (Section 2):
//
//   C(q,d) = sum_{t in q ∩ d} w_qt * w_dt / sqrt(W_q^2 * W_d^2)
//   w_dt   = log(f_dt + 1)
//   w_qt   = log(f_qt + 1) * log(N/f_t + 1)
//
// with the collection-wide statistic confined to the query weights. The
// family below also carries the neighbouring formulations from Zobel &
// Moffat's "Exploring the similarity space" [29], used by the similarity
// ablation bench.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "text/pipeline.h"

namespace teraphim::rank {

/// A parsed query: distinct terms with their within-query frequencies.
struct QueryTerm {
    std::string term;
    std::uint32_t fqt = 1;
};

struct Query {
    std::vector<QueryTerm> terms;

    std::size_t distinct_terms() const { return terms.size(); }
};

/// Runs raw query text through the pipeline and folds duplicates into
/// f_qt counts. Term order is first-occurrence order (deterministic).
Query parse_query(std::string_view text, const text::Pipeline& pipeline);

/// A query term with its weight resolved against some set of collection
/// statistics — either the librarian's own (MS/CN) or the receptionist's
/// global ones (CV). This is exactly what travels on the wire in CV mode.
struct WeightedQueryTerm {
    std::string term;
    double weight = 0.0;  ///< w_qt
};

/// One ranked answer.
struct SearchResult {
    std::uint32_t doc = 0;
    double score = 0.0;

    friend bool operator==(const SearchResult&, const SearchResult&) = default;
};

/// Orders by score descending, then doc ascending: the deterministic
/// order used everywhere results are ranked or merged.
bool result_before(const SearchResult& a, const SearchResult& b);

/// The pluggable measure. Implementations must be stateless and
/// thread-safe; all methods are pure functions of their arguments.
class SimilarityMeasure {
public:
    virtual ~SimilarityMeasure() = default;

    /// w_qt for a term with query frequency f_qt, collection size N and
    /// document frequency f_t. Must return 0 when f_t == 0.
    virtual double query_weight(std::uint32_t fqt, std::uint64_t num_docs,
                                std::uint64_t ft) const = 0;

    /// w_dt for in-document frequency f_dt (>= 1).
    virtual double doc_weight(std::uint32_t fdt) const = 0;

    /// Whether scores are divided by W_d (document-length normalisation).
    virtual bool normalise_by_document() const { return true; }

    /// Whether scores are divided by W_q (constant per query; changes
    /// score values, and hence CN merging, but not per-librarian order).
    virtual bool normalise_by_query() const { return true; }

    virtual std::string_view name() const = 0;
};

/// The paper's measure: w_dt = log(f_dt+1), w_qt = log(f_qt+1)*log(N/f_t+1).
const SimilarityMeasure& cosine_log_tf();

/// w_dt = f_dt, w_qt = f_qt * log(N/f_t + 1)  (classic tf·idf cosine).
const SimilarityMeasure& cosine_tf_idf();

/// w_dt = 1, w_qt = log(N/f_t + 1)  (binary documents, idf queries).
const SimilarityMeasure& cosine_binary();

/// Unnormalised inner product with the paper's weights (no W_d, no W_q).
const SimilarityMeasure& inner_product_log_tf();

/// All measures, for parameterised tests and the similarity bench.
std::vector<const SimilarityMeasure*> all_measures();

/// W_q = sqrt(sum of w_qt^2) over the supplied weighted terms.
double query_norm(const std::vector<WeightedQueryTerm>& terms);

}  // namespace teraphim::rank
