#include "rank/query_processor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "rank/accumulator_table.h"
#include "rank/merged_cursor.h"
#include "util/error.h"

namespace teraphim::rank {

namespace {

/// Multiplicative slack applied to every pruning bound. The bound
/// arithmetic (upper-bound prefix sums, partial sums accumulated in
/// probe order) rounds differently from the canonical score (summed in
/// original term order), so a mathematically-equal bound could fall an
/// ulp below the true score and prune a document that belongs in the
/// top k. Relative rounding error of a T-term non-negative sum is
/// bounded by ~T·2^-52 (≈2e-13 for a thousand terms); 1e-9 covers it
/// with six orders of magnitude to spare while staying far below any
/// meaningful score difference. See DESIGN.md §14.
constexpr double kBoundSlack = 1.0 + 1e-9;

const auto worse_first = [](const SearchResult& a, const SearchResult& b) {
    return result_before(a, b);  // makes the heap top the *worst* kept result
};

/// Pushes r into the top-k min-heap, displacing the worst entry once
/// the heap is full. Returns true when the heap changed.
bool heap_offer(std::vector<SearchResult>& heap, std::size_t k, const SearchResult& r) {
    if (heap.size() < k) {
        heap.push_back(r);
        std::push_heap(heap.begin(), heap.end(), worse_first);
        return true;
    }
    if (k > 0 && result_before(r, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), worse_first);
        heap.back() = r;
        std::push_heap(heap.begin(), heap.end(), worse_first);
        return true;
    }
    return false;
}

std::vector<SearchResult> heap_finish(std::vector<SearchResult>&& heap) {
    std::sort(heap.begin(), heap.end(), result_before);
    return std::move(heap);
}

}  // namespace

QueryProcessor::QueryProcessor(const index::InvertedIndex& index,
                               const SimilarityMeasure& measure,
                               const index::DeltaIndex* delta)
    : index_(&index), measure_(&measure), delta_(delta) {
    if (delta_ != nullptr) {
        TERAPHIM_ASSERT_MSG(delta_->base_documents() == index_->num_documents(),
                            "delta index was built over a different base collection");
        if (delta_->empty()) delta_ = nullptr;  // frozen path, zero overhead
    }
}

double QueryProcessor::merged_min_positive_doc_weight() const {
    double min_wd = index_->min_positive_doc_weight();
    if (delta_ != nullptr) {
        const double dmin = delta_->min_positive_doc_weight();
        if (dmin > 0.0 && (min_wd == 0.0 || dmin < min_wd)) min_wd = dmin;
    }
    return min_wd;
}

std::vector<WeightedQueryTerm> QueryProcessor::resolve_weights(const Query& query) const {
    std::vector<WeightedQueryTerm> out;
    out.reserve(query.terms.size());
    // Live collections: query weights come from the *merged* statistics
    // (N and f_t additive over main + delta), the values a rebuilt
    // combined index would report.
    const std::uint64_t n = total_documents();
    for (const QueryTerm& qt : query.terms) {
        std::uint64_t ft = 0;
        if (const auto id = index_->vocabulary().lookup(qt.term)) {
            ft = index_->stats(*id).doc_frequency;
        }
        if (delta_ != nullptr) {
            if (const auto* entry = delta_->find(qt.term)) {
                ft += entry->stats.doc_frequency;
            }
        }
        out.push_back({qt.term, measure_->query_weight(qt.fqt, n, ft)});
    }
    return out;
}

std::vector<SearchResult> QueryProcessor::rank(const Query& query, std::size_t k,
                                               const RankPolicy& policy,
                                               RankStats* stats) const {
    const auto weighted = resolve_weights(query);
    return rank_weighted(weighted, query_norm(weighted), k, policy, stats);
}

std::vector<SearchResult> QueryProcessor::rank_weighted(
    const std::vector<WeightedQueryTerm>& terms, double qnorm, std::size_t k,
    const RankPolicy& policy, RankStats* stats) const {
    if (policy.pruned) {
        TERAPHIM_ASSERT_MSG(policy.strategy == RankPolicy::Strategy::Unlimited,
                            "pruned ranking cannot be combined with accumulator limiting");
        // The upper-bound argument needs non-negative contributions;
        // external callers may supply arbitrary weights, so fall back
        // to the (always correct) exhaustive path instead of pruning
        // unsafely.
        const bool nonneg = std::all_of(terms.begin(), terms.end(),
                                        [](const WeightedQueryTerm& t) { return t.weight >= 0.0; });
        if (nonneg) return rank_pruned(terms, qnorm, k, policy, stats);
    }
    return rank_exhaustive(terms, qnorm, k, policy, stats);
}

std::vector<SearchResult> QueryProcessor::rank_exhaustive(
    const std::vector<WeightedQueryTerm>& terms, double qnorm, std::size_t k,
    const RankPolicy& policy, RankStats* stats) const {
    RankStats local;
    const bool flat = policy.accumulators == RankPolicy::Accumulators::Flat;
    std::vector<double> dense;
    AccumulatorTable table(flat ? 4096 : 0);
    if (!flat) dense.assign(total_documents(), 0.0);

    // Under a limiting policy, the rarest (highest-weighted) terms go
    // first: they select the documents most likely to rank well, so the
    // accumulator budget is spent on the best candidates [14].
    const bool limited = policy.strategy != RankPolicy::Strategy::Unlimited;
    std::vector<const WeightedQueryTerm*> order;
    order.reserve(terms.size());
    for (const auto& wt : terms) order.push_back(&wt);
    if (limited) {
        std::stable_sort(order.begin(), order.end(),
                         [](const WeightedQueryTerm* a, const WeightedQueryTerm* b) {
                             return a->weight > b->weight;
                         });
    }

    std::size_t live_accumulators = 0;
    bool budget_hit = false;
    for (const WeightedQueryTerm* wt : order) {
        if (wt->weight == 0.0) continue;
        if (budget_hit && policy.strategy == RankPolicy::Strategy::Quit) break;
        const TermPostings tp = find_postings(*index_, delta_, wt->term);
        if (!tp.found) continue;
        ++local.terms_matched;
        const bool admit_new = !budget_hit;
        MergedCursor cur(tp, policy.use_skips);
        if (flat) {
            for (; !cur.at_end(); cur.next()) {
                table.stage(cur.doc(), wt->weight * measure_->doc_weight(cur.fdt()),
                            admit_new);
            }
            table.flush();
            live_accumulators = table.size();
        } else {
            for (; !cur.at_end(); cur.next()) {
                double& acc = dense[cur.doc()];
                if (acc == 0.0) {
                    if (!admit_new) continue;  // Continue: update existing only
                    ++live_accumulators;
                }
                acc += wt->weight * measure_->doc_weight(cur.fdt());
            }
        }
        // Charge what the cursor actually did, not the list totals: the
        // difference matters as soon as a cursor stops early or seeks.
        local.postings_decoded += cur.postings_decoded();
        local.index_bits_read += cur.bits_traversed();
        if (limited && live_accumulators >= policy.max_accumulators) budget_hit = true;
    }

    // Normalisation: divide by W_d (unless the measure opts out) and by
    // W_q (constant per query; kept so CN-merged scores are comparable in
    // the same way the paper's implementation makes them comparable).
    const bool by_doc = measure_->normalise_by_document();
    const bool by_query = measure_->normalise_by_query() && qnorm > 0.0;
    const auto normalise = [&](index::DocNum d, double& score) {
        ++local.accumulators_used;
        if (by_doc) {
            const double wd = doc_weight_of(d);
            score = wd > 0.0 ? score / wd : 0.0;
        }
        if (by_query) score /= qnorm;
    };

    std::vector<SearchResult> out;
    if (flat) {
        table.for_each([&](index::DocNum d, double& score) {
            if (score != 0.0) normalise(d, score);
        });
        out = top_k_from_entries(table.extract_entries(), k);
    } else {
        for (std::size_t d = 0; d < dense.size(); ++d) {
            if (dense[d] == 0.0) continue;
            normalise(static_cast<index::DocNum>(d), dense[d]);
        }
        out = top_k_from_accumulators(dense, k);
    }
    if (stats != nullptr) *stats = local;
    return out;
}

std::vector<SearchResult> QueryProcessor::rank_pruned(
    const std::vector<WeightedQueryTerm>& terms, double qnorm, std::size_t k,
    const RankPolicy& policy, RankStats* stats) const {
    RankStats local;
    const bool by_doc = measure_->normalise_by_document();
    const bool by_query = measure_->normalise_by_query() && qnorm > 0.0;
    const double min_wd = merged_min_positive_doc_weight();

    // Matched terms, each with its score upper bound w_qt · w_dt(max
    // f_dt) — valid for every monotone w_dt, which all shipped measures
    // have (max_fdt spans main and delta in a live collection). `pos`
    // remembers the original term position: the canonical score of a
    // surviving document is summed in that order, so it is bit-identical
    // to the exhaustive accumulator.
    struct TermState {
        std::size_t pos;
        double weight;
        double ub;
        MergedCursor cur;
    };
    std::vector<TermState> ts;
    ts.reserve(terms.size());
    for (std::size_t i = 0; i < terms.size(); ++i) {
        if (terms[i].weight == 0.0) continue;
        const TermPostings tp = find_postings(*index_, delta_, terms[i].term);
        if (!tp.found) continue;
        ++local.terms_matched;
        MergedCursor cur(tp, policy.use_skips);
        if (cur.at_end()) continue;
        const double ub = terms[i].weight * measure_->doc_weight(tp.max_fdt);
        ts.push_back({i, terms[i].weight, ub, std::move(cur)});
    }
    const std::size_t T = ts.size();

    const auto account_cursors = [&] {
        for (const TermState& t : ts) {
            local.postings_decoded += t.cur.postings_decoded();
            local.index_bits_read += t.cur.bits_traversed();
        }
        if (stats != nullptr) *stats = local;
    };
    if (T == 0 || k == 0) {
        account_cursors();
        return {};
    }

    // MaxScore partition: term indices sorted by ascending upper bound
    // with their prefix sums. The first `ne` lists in this order are
    // non-essential — their combined upper bounds cannot lift any
    // document past the current threshold, so they are only ever probed
    // by seek() for documents the essential lists propose.
    std::vector<std::size_t> sigma(T);
    for (std::size_t i = 0; i < T; ++i) sigma[i] = i;
    std::stable_sort(sigma.begin(), sigma.end(), [&](std::size_t a, std::size_t b) {
        return ts[a].ub < ts[b].ub;
    });
    std::vector<double> prefix_ub(T);
    double running_ub = 0.0;
    for (std::size_t j = 0; j < T; ++j) {
        running_ub += ts[sigma[j]].ub;
        prefix_ub[j] = running_ub;
    }

    std::vector<SearchResult> heap;
    heap.reserve(k + 1);
    std::size_t ne = 0;  // lists sigma[0..ne) are non-essential

    // Converts an unnormalised upper bound into score space using the
    // most favourable denominators, inflated by the rounding slack.
    const auto bound_for = [&](double unnorm, double wd) {
        double b = unnorm * kBoundSlack;
        if (by_doc) b /= wd;
        if (by_query) b /= qnorm;
        return b;
    };

    // Tightens the essential/non-essential split against the current
    // threshold. Strict comparison: a document scoring *exactly* the
    // bound could still enter on the doc-id tie-break.
    const auto tighten = [&] {
        if (heap.size() < k || (by_doc && min_wd <= 0.0)) return;
        while (ne < T && bound_for(prefix_ub[ne], min_wd) < heap.front().score) ++ne;
    };

    std::vector<double> contrib(terms.size(), 0.0);
    for (;;) {
        // Pivot: smallest unprocessed document among essential lists.
        std::uint32_t d = std::numeric_limits<std::uint32_t>::max();
        bool live = false;
        for (std::size_t j = ne; j < T; ++j) {
            const auto& cur = ts[sigma[j]].cur;
            if (!cur.at_end() && (!live || cur.doc() < d)) {
                d = cur.doc();
                live = true;
            }
        }
        if (!live) break;  // every remaining list is provably non-essential or drained

        // Essential contributions at d (recorded by original position).
        double partial = 0.0;
        for (std::size_t j = ne; j < T; ++j) {
            TermState& t = ts[sigma[j]];
            if (!t.cur.at_end() && t.cur.doc() == d) {
                const double c = t.weight * measure_->doc_weight(t.cur.fdt());
                contrib[t.pos] = c;
                partial += c;
            }
        }

        const double wd = by_doc ? doc_weight_of(d) : 1.0;
        bool viable = !(by_doc && wd <= 0.0);  // W_d = 0 scores 0 exhaustively
        const bool full = heap.size() >= k;
        if (viable && full) {
            const double rest = ne > 0 ? prefix_ub[ne - 1] : 0.0;
            viable = result_before({d, bound_for(partial + rest, wd)}, heap.front());
        }
        if (viable && ne > 0) {
            // Probe non-essential lists, largest upper bound first,
            // re-checking the (shrinking) bound after each seek.
            double actual = partial;
            for (std::size_t j = ne; j-- > 0;) {
                TermState& t = ts[sigma[j]];
                ++local.seeks;
                if (!t.cur.at_end() && t.cur.seek(d)) {
                    const double c = t.weight * measure_->doc_weight(t.cur.fdt());
                    contrib[t.pos] = c;
                    actual += c;
                }
                if (full) {
                    const double rest = j > 0 ? prefix_ub[j - 1] : 0.0;
                    if (!result_before({d, bound_for(actual + rest, wd)}, heap.front())) {
                        viable = false;
                        break;
                    }
                }
            }
        }

        if (viable) {
            // Canonical score: original term order, then the exact
            // normalisation sequence of the exhaustive path. Untouched
            // positions add 0.0, which leaves a non-negative partial
            // sum bit-identical.
            double score = 0.0;
            for (std::size_t i = 0; i < contrib.size(); ++i) score += contrib[i];
            ++local.accumulators_used;
            if (by_doc) score = wd > 0.0 ? score / wd : 0.0;
            if (by_query) score /= qnorm;
            if (score > 0.0 && heap_offer(heap, k, {d, score})) tighten();
        } else {
            ++local.docs_pruned;
        }

        // Reset touched contributions and advance the essential
        // cursors positioned on d (before any tightening from this
        // round's insert took effect — `tighten` only grows `ne`, and
        // cursors demoted mid-round must still step past d).
        for (std::size_t j = ne; j < T; ++j) {
            TermState& t = ts[sigma[j]];
            contrib[t.pos] = 0.0;
            if (!t.cur.at_end() && t.cur.doc() == d) t.cur.next();
        }
        for (std::size_t j = 0; j < ne; ++j) contrib[ts[sigma[j]].pos] = 0.0;
    }

    account_cursors();
    return heap_finish(std::move(heap));
}

std::vector<SearchResult> top_k_from_accumulators(const std::vector<double>& accumulators,
                                                  std::size_t k) {
    std::vector<SearchResult> heap;  // min-heap on result_before order
    heap.reserve(k + 1);
    // std::size_t indexing: a std::uint32_t counter would truncate (and
    // never terminate) against a size() at or above 2^32 documents.
    static_assert(sizeof(std::size_t) >= sizeof(index::DocNum),
                  "accumulator indexing must cover the DocNum range");
    for (std::size_t d = 0; d < accumulators.size(); ++d) {
        if (accumulators[d] <= 0.0) continue;
        heap_offer(heap, k, {static_cast<index::DocNum>(d), accumulators[d]});
    }
    return heap_finish(std::move(heap));
}

std::vector<SearchResult> top_k_from_entries(const std::vector<SearchResult>& entries,
                                             std::size_t k) {
    std::vector<SearchResult> heap;
    heap.reserve(k + 1);
    for (const SearchResult& r : entries) {
        if (r.score <= 0.0) continue;
        heap_offer(heap, k, r);
    }
    return heap_finish(std::move(heap));
}

}  // namespace teraphim::rank
