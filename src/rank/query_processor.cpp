#include "rank/query_processor.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace teraphim::rank {

QueryProcessor::QueryProcessor(const index::InvertedIndex& index,
                               const SimilarityMeasure& measure)
    : index_(&index), measure_(&measure) {}

std::vector<WeightedQueryTerm> QueryProcessor::resolve_weights(const Query& query) const {
    std::vector<WeightedQueryTerm> out;
    out.reserve(query.terms.size());
    const std::uint64_t n = index_->num_documents();
    for (const QueryTerm& qt : query.terms) {
        std::uint64_t ft = 0;
        if (const auto id = index_->vocabulary().lookup(qt.term)) {
            ft = index_->stats(*id).doc_frequency;
        }
        out.push_back({qt.term, measure_->query_weight(qt.fqt, n, ft)});
    }
    return out;
}

std::vector<SearchResult> QueryProcessor::rank(const Query& query, std::size_t k,
                                               RankStats* stats) const {
    const auto weighted = resolve_weights(query);
    return rank_weighted(weighted, query_norm(weighted), k, stats);
}

std::vector<SearchResult> QueryProcessor::rank_weighted(
    const std::vector<WeightedQueryTerm>& terms, double qnorm, std::size_t k,
    const RankPolicy& policy, RankStats* stats) const {
    RankStats local;
    std::vector<double> accumulators(index_->num_documents(), 0.0);

    // Under a limiting policy, the rarest (highest-weighted) terms go
    // first: they select the documents most likely to rank well, so the
    // accumulator budget is spent on the best candidates [14].
    const bool limited = policy.strategy != RankPolicy::Strategy::Unlimited;
    std::vector<const WeightedQueryTerm*> order;
    order.reserve(terms.size());
    for (const auto& wt : terms) order.push_back(&wt);
    if (limited) {
        std::stable_sort(order.begin(), order.end(),
                         [](const WeightedQueryTerm* a, const WeightedQueryTerm* b) {
                             return a->weight > b->weight;
                         });
    }

    std::size_t live_accumulators = 0;
    bool budget_hit = false;
    for (const WeightedQueryTerm* wt : order) {
        if (wt->weight == 0.0) continue;
        if (budget_hit && policy.strategy == RankPolicy::Strategy::Quit) break;
        const auto id = index_->vocabulary().lookup(wt->term);
        if (!id) continue;
        const index::PostingsList& list = index_->postings(*id);
        ++local.terms_matched;
        local.index_bits_read += list.total_bits();
        const bool admit_new = !budget_hit;
        for (index::PostingsCursor cur(list, /*use_skips=*/false); !cur.at_end(); cur.next()) {
            double& acc = accumulators[cur.doc()];
            if (acc == 0.0) {
                if (!admit_new) continue;  // Continue: update existing only
                ++live_accumulators;
            }
            acc += wt->weight * measure_->doc_weight(cur.fdt());
        }
        local.postings_decoded += list.count();
        if (limited && live_accumulators >= policy.max_accumulators) budget_hit = true;
    }

    // Normalisation: divide by W_d (unless the measure opts out) and by
    // W_q (constant per query; kept so CN-merged scores are comparable in
    // the same way the paper's implementation makes them comparable).
    const bool by_doc = measure_->normalise_by_document();
    const bool by_query = measure_->normalise_by_query() && qnorm > 0.0;
    for (index::DocNum d = 0; d < accumulators.size(); ++d) {
        if (accumulators[d] == 0.0) continue;
        ++local.accumulators_used;
        if (by_doc) {
            const double wd = index_->doc_weight(d);
            accumulators[d] = wd > 0.0 ? accumulators[d] / wd : 0.0;
        }
        if (by_query) accumulators[d] /= qnorm;
    }

    if (stats != nullptr) *stats = local;
    return top_k_from_accumulators(accumulators, k);
}

std::vector<SearchResult> top_k_from_accumulators(const std::vector<double>& accumulators,
                                                  std::size_t k) {
    std::vector<SearchResult> heap;  // min-heap on result_before order
    heap.reserve(k + 1);
    const auto worse_first = [](const SearchResult& a, const SearchResult& b) {
        return result_before(a, b);  // makes the heap top the *worst* kept result
    };
    for (std::uint32_t d = 0; d < accumulators.size(); ++d) {
        if (accumulators[d] <= 0.0) continue;
        const SearchResult r{d, accumulators[d]};
        if (heap.size() < k) {
            heap.push_back(r);
            std::push_heap(heap.begin(), heap.end(), worse_first);
        } else if (k > 0 && result_before(r, heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), worse_first);
            heap.back() = r;
            std::push_heap(heap.begin(), heap.end(), worse_first);
        }
    }
    std::sort(heap.begin(), heap.end(), result_before);
    return heap;
}

}  // namespace teraphim::rank
