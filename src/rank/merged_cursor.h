// Chained main+delta postings traversal for live collections.
//
// A query term's postings over a live collection are the main index's
// compressed list followed by the term's in-memory delta postings —
// every delta document is numbered past every main document, so the
// concatenation is exactly the single sorted list a from-scratch
// rebuild of the combined collection would hold. MergedCursor presents
// that concatenation behind the PostingsCursor interface (doc/fdt/next/
// seek), which is what lets the exhaustive and MaxScore-pruned
// evaluators perform the *same accumulator additions in the same order*
// as they would against the rebuilt index — the heart of the
// byte-identity guarantee in DESIGN.md §16. With an empty delta the
// cursor is a transparent pass-through, so the frozen-collection hot
// path is untouched.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "index/delta_index.h"
#include "index/inverted_index.h"
#include "index/postings.h"

namespace teraphim::rank {

/// Resolution of one query term against a main index plus optional
/// delta: whichever parts exist, and the combined max f_dt for the
/// pruning upper bound (valid because both parts' maxima are exact).
struct TermPostings {
    bool found = false;
    const index::PostingsList* list = nullptr;  ///< main list; null if absent
    std::span<const index::Posting> delta;      ///< global doc numbers
    std::uint32_t max_fdt = 0;
};

inline TermPostings find_postings(const index::InvertedIndex& index,
                                  const index::DeltaIndex* delta,
                                  std::string_view term) {
    TermPostings out;
    if (const auto id = index.vocabulary().lookup(term)) {
        out.found = true;
        out.list = &index.postings(*id);
        out.max_fdt = out.list->max_fdt();
    }
    if (delta != nullptr) {
        if (const auto* entry = delta->find(term)) {
            out.found = true;
            out.delta = entry->postings;
            out.max_fdt = std::max(out.max_fdt, entry->max_fdt);
        }
    }
    return out;
}

class MergedCursor {
public:
    MergedCursor(const TermPostings& tp, bool use_skips) : delta_(tp.delta) {
        if (tp.list != nullptr && !tp.list->empty()) {
            list_ = tp.list;
            main_.emplace(*tp.list, use_skips);
        }
    }

    bool at_end() const { return !in_main() && di_ >= delta_.size(); }
    std::uint32_t doc() const { return in_main() ? main_->doc() : delta_[di_].doc; }
    std::uint32_t fdt() const { return in_main() ? main_->fdt() : delta_[di_].fdt; }

    void next() {
        if (in_main()) {
            main_->next();
        } else {
            ++di_;
        }
    }

    /// Advances to the first posting with doc >= target (never moves
    /// backwards). Returns true iff positioned on an exact match.
    bool seek(std::uint32_t target) {
        if (in_main()) {
            if (main_->seek(target)) return true;
            if (!main_->at_end()) return false;  // on a main doc > target
        }
        while (di_ < delta_.size() && delta_[di_].doc < target) ++di_;
        return di_ < delta_.size() && delta_[di_].doc == target;
    }

    std::uint64_t main_decoded() const { return main_ ? main_->postings_decoded() : 0; }

    /// Delta postings the cursor has stepped onto.
    std::uint64_t delta_decoded() const {
        if (delta_.empty()) return 0;
        const bool on_delta = !in_main() && di_ < delta_.size();
        return di_ + (on_delta ? 1 : 0);
    }

    std::uint64_t postings_decoded() const { return main_decoded() + delta_decoded(); }

    /// Bits charged to the cost model: the compressed main list
    /// proportional to the fraction traversed (exactly as the frozen
    /// path charges), delta postings at their in-memory size.
    std::uint64_t bits_traversed() const {
        std::uint64_t bits = 0;
        if (list_ != nullptr && list_->count() != 0) {
            bits += list_->total_bits() * main_decoded() / list_->count();
        }
        return bits + delta_decoded() * sizeof(index::Posting) * 8;
    }

private:
    bool in_main() const { return main_.has_value() && !main_->at_end(); }

    const index::PostingsList* list_ = nullptr;
    std::optional<index::PostingsCursor> main_;
    std::span<const index::Posting> delta_;
    std::size_t di_ = 0;
};

}  // namespace teraphim::rank
