#include "rank/boolean.h"

#include <algorithm>
#include <cctype>

#include "util/error.h"

namespace teraphim::rank {

namespace {

struct Token {
    enum class Kind { Term, And, Or, Not, LParen, RParen, End };
    Kind kind;
    std::string text;
};

class Lexer {
public:
    explicit Lexer(std::string_view input) : input_(input) { advance(); }

    const Token& peek() const { return current_; }

    Token take() {
        Token t = std::move(current_);
        advance();
        return t;
    }

private:
    void advance() {
        while (pos_ < input_.size() &&
               std::isspace(static_cast<unsigned char>(input_[pos_]))) {
            ++pos_;
        }
        if (pos_ >= input_.size()) {
            current_ = {Token::Kind::End, ""};
            return;
        }
        const char c = input_[pos_];
        if (c == '(') {
            ++pos_;
            current_ = {Token::Kind::LParen, "("};
            return;
        }
        if (c == ')') {
            ++pos_;
            current_ = {Token::Kind::RParen, ")"};
            return;
        }
        std::size_t end = pos_;
        while (end < input_.size() && input_[end] != '(' && input_[end] != ')' &&
               !std::isspace(static_cast<unsigned char>(input_[end]))) {
            ++end;
        }
        std::string word(input_.substr(pos_, end - pos_));
        pos_ = end;
        std::string upper = word;
        for (char& ch : upper) ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
        if (upper == "AND") {
            current_ = {Token::Kind::And, std::move(word)};
        } else if (upper == "OR") {
            current_ = {Token::Kind::Or, std::move(word)};
        } else if (upper == "NOT") {
            current_ = {Token::Kind::Not, std::move(word)};
        } else {
            current_ = {Token::Kind::Term, std::move(word)};
        }
    }

    std::string_view input_;
    std::size_t pos_ = 0;
    Token current_{Token::Kind::End, ""};
};

class Parser {
public:
    Parser(Lexer lexer, const text::Pipeline& pipeline)
        : lexer_(std::move(lexer)), pipeline_(&pipeline) {}

    std::unique_ptr<BooleanNode> parse() {
        auto node = parse_or();
        if (lexer_.peek().kind != Token::Kind::End) {
            throw DataError("boolean query: unexpected token '" + lexer_.peek().text + "'");
        }
        if (!node) throw DataError("boolean query: no indexable terms");
        return node;
    }

private:
    // Each parse_* may return nullptr when its terms were all removed by
    // the pipeline (stop-words); callers treat a null operand as absent.
    std::unique_ptr<BooleanNode> parse_or() {
        auto left = parse_and();
        while (lexer_.peek().kind == Token::Kind::Or) {
            lexer_.take();
            auto right = parse_and();
            left = combine(BooleanNode::Kind::Or, std::move(left), std::move(right));
        }
        return left;
    }

    std::unique_ptr<BooleanNode> parse_and() {
        auto left = parse_unary();
        for (;;) {
            const auto kind = lexer_.peek().kind;
            if (kind == Token::Kind::And) {
                lexer_.take();
            } else if (kind != Token::Kind::Term && kind != Token::Kind::Not &&
                       kind != Token::Kind::LParen) {
                break;  // adjacency only continues over operand starters
            }
            auto right = parse_unary();
            left = combine(BooleanNode::Kind::And, std::move(left), std::move(right));
        }
        return left;
    }

    std::unique_ptr<BooleanNode> parse_unary() {
        const Token t = lexer_.take();
        switch (t.kind) {
            case Token::Kind::Not: {
                auto operand = parse_unary();
                if (!operand) throw DataError("boolean query: NOT with empty operand");
                auto node = std::make_unique<BooleanNode>();
                node->kind = BooleanNode::Kind::Not;
                node->left = std::move(operand);
                return node;
            }
            case Token::Kind::LParen: {
                auto inner = parse_or();
                if (lexer_.peek().kind != Token::Kind::RParen) {
                    throw DataError("boolean query: missing ')'");
                }
                lexer_.take();
                return inner;
            }
            case Token::Kind::Term: {
                const std::string norm = pipeline_->normalize(
                    [&] {
                        std::string lower = t.text;
                        for (char& c : lower) {
                            c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
                        }
                        return lower;
                    }());
                if (norm.empty()) return nullptr;  // stopped term
                auto node = std::make_unique<BooleanNode>();
                node->kind = BooleanNode::Kind::Term;
                node->term = norm;
                return node;
            }
            default:
                throw DataError("boolean query: unexpected token '" + t.text + "'");
        }
    }

    static std::unique_ptr<BooleanNode> combine(BooleanNode::Kind kind,
                                                std::unique_ptr<BooleanNode> left,
                                                std::unique_ptr<BooleanNode> right) {
        if (!left) return right;
        if (!right) return left;
        auto node = std::make_unique<BooleanNode>();
        node->kind = kind;
        node->left = std::move(left);
        node->right = std::move(right);
        return node;
    }

    Lexer lexer_;
    const text::Pipeline* pipeline_;
};

std::vector<std::uint32_t> term_docs(const std::string& term,
                                     const index::InvertedIndex& index) {
    std::vector<std::uint32_t> out;
    if (const auto id = index.vocabulary().lookup(term)) {
        const index::PostingsList& list = index.postings(*id);
        out.reserve(list.count());
        for (index::PostingsCursor cur(list, false); !cur.at_end(); cur.next()) {
            out.push_back(cur.doc());
        }
    }
    return out;
}

std::vector<std::uint32_t> universe(const index::InvertedIndex& index) {
    std::vector<std::uint32_t> all(index.num_documents());
    for (std::uint32_t d = 0; d < all.size(); ++d) all[d] = d;
    return all;
}

}  // namespace

std::string BooleanNode::to_string() const {
    switch (kind) {
        case Kind::Term:
            return term;
        case Kind::And:
            return "(" + left->to_string() + " AND " + right->to_string() + ")";
        case Kind::Or:
            return "(" + left->to_string() + " OR " + right->to_string() + ")";
        case Kind::Not:
            return "(NOT " + left->to_string() + ")";
    }
    return "?";
}

std::unique_ptr<BooleanNode> parse_boolean(std::string_view query,
                                           const text::Pipeline& pipeline) {
    return Parser(Lexer(query), pipeline).parse();
}

std::vector<std::uint32_t> evaluate_boolean(const BooleanNode& node,
                                            const index::InvertedIndex& index) {
    switch (node.kind) {
        case BooleanNode::Kind::Term:
            return term_docs(node.term, index);
        case BooleanNode::Kind::And:
            return set_intersect(evaluate_boolean(*node.left, index),
                                 evaluate_boolean(*node.right, index));
        case BooleanNode::Kind::Or:
            return set_union(evaluate_boolean(*node.left, index),
                             evaluate_boolean(*node.right, index));
        case BooleanNode::Kind::Not:
            return set_difference(universe(index), evaluate_boolean(*node.left, index));
    }
    throw DataError("boolean query: corrupt AST");
}

std::vector<std::uint32_t> boolean_search(std::string_view query,
                                          const index::InvertedIndex& index,
                                          const text::Pipeline& pipeline) {
    return evaluate_boolean(*parse_boolean(query, pipeline), index);
}

std::vector<std::uint32_t> set_intersect(std::span<const std::uint32_t> a,
                                         std::span<const std::uint32_t> b) {
    std::vector<std::uint32_t> out;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
    return out;
}

std::vector<std::uint32_t> set_union(std::span<const std::uint32_t> a,
                                     std::span<const std::uint32_t> b) {
    std::vector<std::uint32_t> out;
    std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
    return out;
}

std::vector<std::uint32_t> set_difference(std::span<const std::uint32_t> a,
                                          std::span<const std::uint32_t> b) {
    std::vector<std::uint32_t> out;
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
    return out;
}

}  // namespace teraphim::rank
