#include "rank/candidate_scorer.h"

#include "rank/merged_cursor.h"
#include "util/error.h"

namespace teraphim::rank {

std::vector<SearchResult> score_candidates(const index::InvertedIndex& index,
                                           const SimilarityMeasure& measure,
                                           const std::vector<WeightedQueryTerm>& terms,
                                           double query_norm,
                                           std::span<const std::uint32_t> candidates,
                                           bool use_skips, CandidateStats* stats,
                                           const index::DeltaIndex* delta) {
    for (std::size_t i = 1; i < candidates.size(); ++i) {
        TERAPHIM_ASSERT_MSG(candidates[i - 1] < candidates[i],
                            "candidates must be sorted and distinct");
    }
    if (delta != nullptr && delta->empty()) delta = nullptr;

    CandidateStats local;
    std::vector<double> scores(candidates.size(), 0.0);

    // Term-at-a-time: one pass over each matching term's list, seeking
    // from candidate to candidate so the cursor only moves forward. With
    // a live delta the cursor chains into the in-memory postings for
    // candidates numbered past the main index.
    for (const auto& wt : terms) {
        if (wt.weight == 0.0) continue;
        const TermPostings tp = find_postings(index, delta, wt.term);
        if (!tp.found) continue;
        ++local.terms_matched;

        MergedCursor cur(tp, use_skips);
        for (std::size_t i = 0; i < candidates.size() && !cur.at_end(); ++i) {
            ++local.seeks;
            if (cur.seek(candidates[i])) {
                scores[i] += wt.weight * measure.doc_weight(cur.fdt());
            }
        }
        local.postings_decoded += cur.postings_decoded();
        // Charge only the bits actually traversed: proportional to the
        // fraction of the list decoded (the whole point of skipping).
        local.index_bits_read += cur.bits_traversed();
    }

    const std::uint32_t base = index.num_documents();
    const bool by_doc = measure.normalise_by_document();
    const bool by_query = measure.normalise_by_query() && query_norm > 0.0;
    std::vector<SearchResult> out;
    out.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        double score = scores[i];
        if (score != 0.0) {
            if (by_doc) {
                const double wd = (delta != nullptr && candidates[i] >= base)
                                      ? delta->doc_weight(candidates[i])
                                      : index.doc_weight(candidates[i]);
                score = wd > 0.0 ? score / wd : 0.0;
            }
            if (by_query) score /= query_norm;
        }
        out.push_back({candidates[i], score});
    }
    if (stats != nullptr) *stats = local;
    return out;
}

}  // namespace teraphim::rank
