// Candidate-restricted scoring for the Central Index methodology.
//
// After ranking its grouped index, the CI receptionist knows *which*
// documents might matter (the k'·G expanded candidates) and asks each
// librarian for exact similarity values for just those documents. With
// self-indexed postings this costs far less than a full ranking: each
// query term's list is entered only at the sync points nearest the
// candidates ("a mechanism that allows similarity values for some
// documents to be computed without processing the index lists in full",
// Section 3). `use_skips = false` reproduces the paper's as-run
// configuration; the skipping ablation bench measures the difference.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "index/delta_index.h"
#include "index/inverted_index.h"
#include "rank/similarity.h"

namespace teraphim::rank {

struct CandidateStats {
    std::uint64_t terms_matched = 0;
    std::uint64_t postings_decoded = 0;
    std::uint64_t seeks = 0;
    std::uint64_t index_bits_read = 0;
};

/// Computes similarity scores for exactly `candidates` (sorted, distinct
/// local doc numbers). Returns one SearchResult per candidate, in
/// candidate order; documents matching no query term get score 0.
///
/// `query_norm` is W_q (pass the receptionist's global norm in CI mode).
/// `delta`, when non-null, extends the collection with live documents
/// (numbered past the main index); candidates may then address them.
std::vector<SearchResult> score_candidates(const index::InvertedIndex& index,
                                           const SimilarityMeasure& measure,
                                           const std::vector<WeightedQueryTerm>& terms,
                                           double query_norm,
                                           std::span<const std::uint32_t> candidates,
                                           bool use_skips = true,
                                           CandidateStats* stats = nullptr,
                                           const index::DeltaIndex* delta = nullptr);

}  // namespace teraphim::rank
