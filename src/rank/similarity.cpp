#include "rank/similarity.h"

#include <cmath>
#include <unordered_map>

namespace teraphim::rank {

Query parse_query(std::string_view text, const text::Pipeline& pipeline) {
    Query q;
    std::unordered_map<std::string, std::size_t> seen;
    for (auto& term : pipeline.terms(text)) {
        const auto [it, inserted] = seen.emplace(term, q.terms.size());
        if (inserted) {
            q.terms.push_back({std::move(term), 1});
        } else {
            ++q.terms[it->second].fqt;
        }
    }
    return q;
}

bool result_before(const SearchResult& a, const SearchResult& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
}

namespace {

class CosineLogTf final : public SimilarityMeasure {
public:
    double query_weight(std::uint32_t fqt, std::uint64_t n, std::uint64_t ft) const override {
        if (ft == 0) return 0.0;
        return std::log(static_cast<double>(fqt) + 1.0) *
               std::log(static_cast<double>(n) / static_cast<double>(ft) + 1.0);
    }
    double doc_weight(std::uint32_t fdt) const override {
        return std::log(static_cast<double>(fdt) + 1.0);
    }
    std::string_view name() const override { return "cosine-log-tf"; }
};

class CosineTfIdf final : public SimilarityMeasure {
public:
    double query_weight(std::uint32_t fqt, std::uint64_t n, std::uint64_t ft) const override {
        if (ft == 0) return 0.0;
        return static_cast<double>(fqt) *
               std::log(static_cast<double>(n) / static_cast<double>(ft) + 1.0);
    }
    double doc_weight(std::uint32_t fdt) const override { return static_cast<double>(fdt); }
    std::string_view name() const override { return "cosine-tf-idf"; }
};

class CosineBinary final : public SimilarityMeasure {
public:
    double query_weight(std::uint32_t, std::uint64_t n, std::uint64_t ft) const override {
        if (ft == 0) return 0.0;
        return std::log(static_cast<double>(n) / static_cast<double>(ft) + 1.0);
    }
    double doc_weight(std::uint32_t) const override { return 1.0; }
    std::string_view name() const override { return "cosine-binary"; }
};

class InnerProductLogTf final : public SimilarityMeasure {
public:
    double query_weight(std::uint32_t fqt, std::uint64_t n, std::uint64_t ft) const override {
        if (ft == 0) return 0.0;
        return std::log(static_cast<double>(fqt) + 1.0) *
               std::log(static_cast<double>(n) / static_cast<double>(ft) + 1.0);
    }
    double doc_weight(std::uint32_t fdt) const override {
        return std::log(static_cast<double>(fdt) + 1.0);
    }
    bool normalise_by_document() const override { return false; }
    bool normalise_by_query() const override { return false; }
    std::string_view name() const override { return "inner-product-log-tf"; }
};

}  // namespace

const SimilarityMeasure& cosine_log_tf() {
    static const CosineLogTf m;
    return m;
}

const SimilarityMeasure& cosine_tf_idf() {
    static const CosineTfIdf m;
    return m;
}

const SimilarityMeasure& cosine_binary() {
    static const CosineBinary m;
    return m;
}

const SimilarityMeasure& inner_product_log_tf() {
    static const InnerProductLogTf m;
    return m;
}

std::vector<const SimilarityMeasure*> all_measures() {
    return {&cosine_log_tf(), &cosine_tf_idf(), &cosine_binary(), &inner_product_log_tf()};
}

double query_norm(const std::vector<WeightedQueryTerm>& terms) {
    double sum_sq = 0.0;
    for (const auto& t : terms) sum_sq += t.weight * t.weight;
    return std::sqrt(sum_sq);
}

}  // namespace teraphim::rank
