// Flat open-addressing accumulator table for term-at-a-time ranking.
//
// Replaces the O(N)-memory dense score vector: a query touches at most
// sum_t f_t documents, so the accumulator structure should be sized to
// the *postings actually processed*, not to the collection. The layout
// and access pattern follow DRAMHiT's partitioned hash tables
// (simple_kht.hpp / cas_kht.hpp): packed {key, value} slots in one
// power-of-two array probed linearly, and a small FIFO staging queue
// that issues a software prefetch for each operation's home slot when
// it is enqueued and performs the probe only when the operation is
// dequeued — by which time the cache line is (ideally) resident, so the
// probe never stalls on DRAM. The queue preserves arrival order, which
// keeps per-document score additions in exactly the order the dense
// vector would apply them: byte-identical floating-point results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rank/similarity.h"

namespace teraphim::rank {

class AccumulatorTable {
public:
    /// `expected_entries` pre-sizes the table (rounded up to a power of
    /// two); the table grows itself when the load factor passes 7/8.
    explicit AccumulatorTable(std::size_t expected_entries = 0);

    /// Enqueues `score[doc] += delta`, prefetching doc's home slot.
    /// With `admit_new` false the addition is dropped unless `doc`
    /// already has an accumulator (Moffat & Zobel's *continue*
    /// strategy). Operations are applied in stage() order once the
    /// staging queue fills or flush() runs.
    void stage(std::uint32_t doc, double delta, bool admit_new = true);

    /// Applies every staged operation. Must be called before size(),
    /// for_each() or extract_entries() observe the latest stage()s.
    void flush();

    /// Live accumulators (documents with an entry).
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /// Allocated slots (power of two); exposed for tests and benches.
    std::size_t capacity() const { return slots_.size(); }

    /// Calls fn(doc, score&) for every live entry, in unspecified
    /// order. The reference is mutable so normalisation can run in
    /// place.
    template <typename Fn>
    void for_each(Fn&& fn) {
        for (Slot& s : slots_) {
            if (s.key != 0) fn(s.key - 1, s.score);
        }
    }

    /// Moves the live entries out as SearchResults (unspecified order).
    std::vector<SearchResult> extract_entries() const;

private:
    // key = doc + 1 so that 0 marks an empty slot; the 16-byte packed
    // slot puts four entries on a cache line.
    struct Slot {
        std::uint32_t key = 0;
        double score = 0.0;
    };
    struct Pending {
        std::uint32_t doc = 0;
        bool admit_new = true;
        double delta = 0.0;
    };

    /// DRAMHiT-style prefetch window: deep enough to cover DRAM
    /// latency, small enough to stay in registers/L1.
    static constexpr std::size_t kBatch = 16;

    std::size_t home_slot(std::uint32_t doc) const;
    void apply(const Pending& op);
    void grow();

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;       ///< capacity - 1
    std::size_t size_ = 0;       ///< live entries
    std::size_t grow_at_ = 0;    ///< size_ threshold triggering grow()
    Pending queue_[kBatch];
    std::size_t queued_ = 0;
};

}  // namespace teraphim::rank
