#include "rank/accumulator_table.h"

namespace teraphim::rank {

namespace {

constexpr std::size_t kMinCapacity = 1024;

std::size_t next_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

}  // namespace

AccumulatorTable::AccumulatorTable(std::size_t expected_entries) {
    // 8/7 headroom so the expected fill stays under the 7/8 load cap.
    const std::size_t wanted = expected_entries + expected_entries / 7 + 1;
    slots_.resize(next_pow2(wanted < kMinCapacity ? kMinCapacity : wanted));
    mask_ = slots_.size() - 1;
    grow_at_ = slots_.size() - slots_.size() / 8;
}

std::size_t AccumulatorTable::home_slot(std::uint32_t doc) const {
    // Fibonacci multiplicative hash; doc numbers are dense and small,
    // the multiply spreads them across the high bits before masking.
    return static_cast<std::size_t>(
               (static_cast<std::uint64_t>(doc + 1) * 0x9E3779B97F4A7C15ull) >> 32) &
           mask_;
}

void AccumulatorTable::stage(std::uint32_t doc, double delta, bool admit_new) {
    if (queued_ == kBatch) flush();
    queue_[queued_++] = Pending{doc, admit_new, delta};
    // Prefetch the home slot now; by the time the queue drains the
    // line should be resident (the DRAMHiT prefetch-ahead pattern).
    __builtin_prefetch(&slots_[home_slot(doc)], /*rw=*/1, /*locality=*/1);
}

void AccumulatorTable::flush() {
    for (std::size_t i = 0; i < queued_; ++i) apply(queue_[i]);
    queued_ = 0;
}

void AccumulatorTable::apply(const Pending& op) {
    const std::uint32_t key = op.doc + 1;
    std::size_t idx = home_slot(op.doc);
    for (;;) {
        Slot& s = slots_[idx];
        if (s.key == key) {
            s.score += op.delta;
            return;
        }
        if (s.key == 0) {
            if (!op.admit_new) return;  // continue strategy: update-only
            s.key = key;
            s.score = op.delta;
            if (++size_ >= grow_at_) grow();
            return;
        }
        idx = (idx + 1) & mask_;
    }
}

void AccumulatorTable::grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    grow_at_ = slots_.size() - slots_.size() / 8;
    for (const Slot& s : old) {
        if (s.key == 0) continue;
        std::size_t idx = home_slot(s.key - 1);
        while (slots_[idx].key != 0) idx = (idx + 1) & mask_;
        slots_[idx] = s;
    }
}

std::vector<SearchResult> AccumulatorTable::extract_entries() const {
    std::vector<SearchResult> out;
    out.reserve(size_);
    for (const Slot& s : slots_) {
        if (s.key != 0) out.push_back({s.key - 1, s.score});
    }
    return out;
}

}  // namespace teraphim::rank
