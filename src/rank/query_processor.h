// Ranked query evaluation over one inverted index.
//
// Term-at-a-time processing with an accumulator per document and a final
// top-k heap selection — the MG evaluation strategy the paper builds on.
// Two entry points mirror the two modes a librarian runs in:
//
//  * rank():          query weights computed from the index's own N and
//                     f_t — the MS and CN configurations.
//  * rank_weighted(): query weights supplied by the caller — the CV
//                     configuration, where the receptionist resolves
//                     weights against its merged vocabulary so that every
//                     librarian produces exactly the MS scores.
//
// The evaluator has two accumulator backends (dense vector / flat
// open-addressing table) and an optional MaxScore-style safe-pruned
// path; all of them return byte-identical top-k rankings (DESIGN.md
// §14). The defaults reproduce the paper's exhaustive configuration.
//
// A processor may additionally be given a DeltaIndex (live collections,
// DESIGN.md §16): every path then evaluates the merged main+delta
// collection — chained cursors, combined N / f_t / upper bounds — with
// results byte-identical to a from-scratch rebuild of the combination.
#pragma once

#include <cstdint>
#include <vector>

#include "index/delta_index.h"
#include "index/inverted_index.h"
#include "rank/similarity.h"

namespace teraphim::rank {

/// Work counters used by the cost model and the ablation benches.
struct RankStats {
    std::uint64_t terms_matched = 0;      ///< query terms found in the vocabulary
    /// Inverted-list entries actually decoded, as counted by the
    /// postings cursors — under pruning or an accumulator budget this is
    /// genuinely smaller than the sum of list lengths.
    std::uint64_t postings_decoded = 0;
    /// Documents that received a score: every nonzero accumulator in
    /// exhaustive mode, the candidates fully scored in pruned mode.
    std::uint64_t accumulators_used = 0;
    /// Compressed bits fetched from "disk", charged proportionally to
    /// the fraction of each list the cursor traversed.
    std::uint64_t index_bits_read = 0;
    std::uint64_t seeks = 0;              ///< skip-synchronised cursor seeks
    /// Documents the pruned evaluator discarded on an upper bound alone
    /// (never fully scored); always 0 in exhaustive mode.
    std::uint64_t docs_pruned = 0;
};

/// Evaluation policy for one ranked query.
///
/// Accumulator limiting after Moffat & Zobel's "Self-indexing inverted
/// files" [14] — the same paper the skipping mechanism comes from. Terms
/// are processed in decreasing w_qt order (rarest first); once the
/// accumulator target is hit, the *quit* strategy abandons the remaining
/// lists entirely, while *continue* keeps updating existing accumulators
/// without admitting new documents.
struct RankPolicy {
    enum class Strategy {
        Unlimited,  ///< every posting of every query term (the default)
        Quit,
        Continue,
    };
    Strategy strategy = Strategy::Unlimited;
    /// Accumulator target; ignored when strategy == Unlimited.
    std::size_t max_accumulators = 0;

    /// Accumulator backend. Dense is the historical std::vector<double>
    /// sized to the collection; Flat is the open-addressing
    /// rank::AccumulatorTable sized to the postings actually touched.
    /// Both produce byte-identical rankings — Dense is kept precisely
    /// so the A/B identity check stays cheap to run.
    enum class Accumulators { Dense, Flat };
    Accumulators accumulators = Accumulators::Dense;

    /// Whether postings cursors may use the self-indexing skip
    /// structure. Default false — the paper's "in these experiments we
    /// did not employ our skipping mechanism" baseline. Pruned
    /// evaluation wants it on: non-essential lists are entered at the
    /// sync points nearest each candidate instead of decoded linearly.
    bool use_skips = false;

    /// Safe dynamic pruning (MaxScore-style over per-term score upper
    /// bounds; see DESIGN.md §14). The top-k result is guaranteed
    /// byte-identical to exhaustive evaluation. Requires Unlimited
    /// strategy and non-negative term weights; rank_weighted falls back
    /// to the exhaustive path when handed negative weights.
    bool pruned = false;
};

class QueryProcessor {
public:
    /// `delta`, when non-null, must be built over `index` (its base
    /// document count equal to the index's N) and outlive the processor;
    /// queries then run against the merged live collection.
    QueryProcessor(const index::InvertedIndex& index, const SimilarityMeasure& measure,
                   const index::DeltaIndex* delta = nullptr);

    /// Ranks the whole collection with locally computed query weights and
    /// returns the top `k` by (score desc, doc asc).
    std::vector<SearchResult> rank(const Query& query, std::size_t k,
                                   RankStats* stats = nullptr) const {
        return rank(query, k, RankPolicy{}, stats);
    }

    /// As above, under an explicit evaluation policy.
    std::vector<SearchResult> rank(const Query& query, std::size_t k,
                                   const RankPolicy& policy, RankStats* stats = nullptr) const;

    /// Ranks with caller-supplied w_qt values. `query_norm` is W_q; pass
    /// the global norm in CV mode so scores match the mono-server ones.
    std::vector<SearchResult> rank_weighted(const std::vector<WeightedQueryTerm>& terms,
                                            double query_norm, std::size_t k,
                                            RankStats* stats = nullptr) const {
        return rank_weighted(terms, query_norm, k, RankPolicy{}, stats);
    }

    /// As above, under an accumulator-limiting / pruning policy.
    std::vector<SearchResult> rank_weighted(const std::vector<WeightedQueryTerm>& terms,
                                            double query_norm, std::size_t k,
                                            const RankPolicy& policy,
                                            RankStats* stats = nullptr) const;

    /// Resolves w_qt for each query term against this index's statistics.
    std::vector<WeightedQueryTerm> resolve_weights(const Query& query) const;

    const index::InvertedIndex& index() const { return *index_; }
    const SimilarityMeasure& measure() const { return *measure_; }
    const index::DeltaIndex* delta() const { return delta_; }

private:
    /// N of the merged collection (main + delta documents).
    std::uint32_t total_documents() const {
        return index_->num_documents() + (delta_ != nullptr ? delta_->num_documents() : 0);
    }
    /// W_d across the merged numbering: main docs from the index, delta
    /// docs (numbered past them) from the delta.
    double doc_weight_of(index::DocNum doc) const {
        return (delta_ != nullptr && doc >= index_->num_documents())
                   ? delta_->doc_weight(doc)
                   : index_->doc_weight(doc);
    }
    double merged_min_positive_doc_weight() const;

    std::vector<SearchResult> rank_exhaustive(const std::vector<WeightedQueryTerm>& terms,
                                              double qnorm, std::size_t k,
                                              const RankPolicy& policy, RankStats* stats) const;
    std::vector<SearchResult> rank_pruned(const std::vector<WeightedQueryTerm>& terms,
                                          double qnorm, std::size_t k, const RankPolicy& policy,
                                          RankStats* stats) const;

    const index::InvertedIndex* index_;
    const SimilarityMeasure* measure_;
    const index::DeltaIndex* delta_;
};

/// Extracts the top-k results (score desc, doc asc) from a full
/// accumulator array; exposed for reuse by the merging logic. Indexing
/// is std::size_t throughout — the array may hold more than 2^32
/// entries even though each surviving doc number fits index::DocNum.
std::vector<SearchResult> top_k_from_accumulators(const std::vector<double>& accumulators,
                                                  std::size_t k);

/// Top-k selection over sparse (doc, score) entries in any order;
/// entries with score <= 0 are ignored, exactly as the dense overload
/// ignores empty accumulators.
std::vector<SearchResult> top_k_from_entries(const std::vector<SearchResult>& entries,
                                             std::size_t k);

}  // namespace teraphim::rank
