// Ranked query evaluation over one inverted index.
//
// Term-at-a-time processing with an accumulator per document and a final
// top-k heap selection — the MG evaluation strategy the paper builds on.
// Two entry points mirror the two modes a librarian runs in:
//
//  * rank():          query weights computed from the index's own N and
//                     f_t — the MS and CN configurations.
//  * rank_weighted(): query weights supplied by the caller — the CV
//                     configuration, where the receptionist resolves
//                     weights against its merged vocabulary so that every
//                     librarian produces exactly the MS scores.
#pragma once

#include <cstdint>
#include <vector>

#include "index/inverted_index.h"
#include "rank/similarity.h"

namespace teraphim::rank {

/// Work counters used by the cost model and the ablation benches.
struct RankStats {
    std::uint64_t terms_matched = 0;      ///< query terms found in the vocabulary
    std::uint64_t postings_decoded = 0;   ///< inverted-list entries touched
    std::uint64_t accumulators_used = 0;  ///< documents with a nonzero score
    std::uint64_t index_bits_read = 0;    ///< compressed bits fetched from "disk"
};

/// Accumulator limiting, after Moffat & Zobel's "Self-indexing inverted
/// files" [14] — the same paper the skipping mechanism comes from. Terms
/// are processed in decreasing w_qt order (rarest first); once the
/// accumulator target is hit, the *quit* strategy abandons the remaining
/// lists entirely, while *continue* keeps updating existing accumulators
/// without admitting new documents.
struct RankPolicy {
    enum class Strategy {
        Unlimited,  ///< every posting of every query term (the default)
        Quit,
        Continue,
    };
    Strategy strategy = Strategy::Unlimited;
    /// Accumulator target; ignored when strategy == Unlimited.
    std::size_t max_accumulators = 0;
};

class QueryProcessor {
public:
    QueryProcessor(const index::InvertedIndex& index, const SimilarityMeasure& measure);

    /// Ranks the whole collection with locally computed query weights and
    /// returns the top `k` by (score desc, doc asc).
    std::vector<SearchResult> rank(const Query& query, std::size_t k,
                                   RankStats* stats = nullptr) const;

    /// Ranks with caller-supplied w_qt values. `query_norm` is W_q; pass
    /// the global norm in CV mode so scores match the mono-server ones.
    std::vector<SearchResult> rank_weighted(const std::vector<WeightedQueryTerm>& terms,
                                            double query_norm, std::size_t k,
                                            RankStats* stats = nullptr) const {
        return rank_weighted(terms, query_norm, k, RankPolicy{}, stats);
    }

    /// As above, under an accumulator-limiting policy.
    std::vector<SearchResult> rank_weighted(const std::vector<WeightedQueryTerm>& terms,
                                            double query_norm, std::size_t k,
                                            const RankPolicy& policy,
                                            RankStats* stats = nullptr) const;

    /// Resolves w_qt for each query term against this index's statistics.
    std::vector<WeightedQueryTerm> resolve_weights(const Query& query) const;

    const index::InvertedIndex& index() const { return *index_; }
    const SimilarityMeasure& measure() const { return *measure_; }

private:
    const index::InvertedIndex* index_;
    const SimilarityMeasure* measure_;
};

/// Extracts the top-k results (score desc, doc asc) from a full
/// accumulator array; exposed for reuse by the merging logic.
std::vector<SearchResult> top_k_from_accumulators(const std::vector<double>& accumulators,
                                                  std::size_t k);

}  // namespace teraphim::rank
