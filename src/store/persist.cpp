#include "store/persist.h"

#include <fstream>

namespace teraphim::store {

namespace {

void serialize_model(const compress::TokenModel& model, net::Writer& out) {
    out.vec(model.vocab(), [](net::Writer& w, const std::string& s) { w.str(s); });
    out.vec(model.code_lengths(), [](net::Writer& w, std::uint8_t l) { w.u8(l); });
}

compress::TokenModel deserialize_model(net::Reader& in) {
    auto vocab = in.vec<std::string>([](net::Reader& r) { return r.str(); });
    auto lengths = in.vec<std::uint8_t>([](net::Reader& r) { return r.u8(); });
    if (vocab.size() != lengths.size()) {
        throw DataError("store file: token model vocab/code-length mismatch");
    }
    return compress::TokenModel::from_lengths(std::move(vocab), std::move(lengths));
}

}  // namespace

void serialize_store(const DocumentStore& store, net::Writer& out) {
    out.u32(kStoreMagic);
    out.u8(kStoreFormatVersion);
    serialize_model(store.codec().word_model(), out);
    serialize_model(store.codec().nonword_model(), out);
    out.u64(store.total_raw_bytes());
    out.u32(static_cast<std::uint32_t>(store.size()));
    for (DocNum d = 0; d < store.size(); ++d) {
        out.str(store.external_id(d));
        out.bytes(store.compressed(d));
    }
}

DocumentStore deserialize_store(net::Reader& in) {
    if (in.u32() != kStoreMagic) throw DataError("not a TERAPHIM document store file");
    const std::uint8_t version = in.u8();
    if (version != kStoreFormatVersion) {
        throw DataError("unsupported store format version " + std::to_string(version));
    }
    auto words = deserialize_model(in);
    auto nonwords = deserialize_model(in);
    compress::TextCodec codec(std::move(words), std::move(nonwords));

    const std::uint64_t raw_bytes = in.u64();
    const std::uint32_t num_docs = in.u32();
    std::vector<std::string> ids;
    std::vector<std::vector<std::uint8_t>> blobs;
    ids.reserve(num_docs);
    blobs.reserve(num_docs);
    for (std::uint32_t d = 0; d < num_docs; ++d) {
        ids.push_back(in.str());
        blobs.push_back(in.bytes());
    }
    return DocumentStore(std::move(codec), std::move(ids), std::move(blobs), raw_bytes);
}

void save_store(const DocumentStore& store, const std::string& path) {
    net::Writer out;
    serialize_store(store, out);
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file) throw IoError("cannot open " + path + " for writing");
    const auto bytes = out.view();
    file.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    if (!file) throw IoError("short write to " + path);
}

DocumentStore load_store(const std::string& path) {
    std::ifstream file(path, std::ios::binary | std::ios::ate);
    if (!file) throw IoError("cannot open " + path + " for reading");
    const std::streamsize size = file.tellg();
    file.seekg(0);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    if (!file.read(reinterpret_cast<char*>(bytes.data()), size)) {
        throw IoError("short read from " + path);
    }
    net::Reader in(bytes);
    return deserialize_store(in);
}

}  // namespace teraphim::store
