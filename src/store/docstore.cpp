#include "store/docstore.h"

#include "util/error.h"

namespace teraphim::store {

void DocStoreBuilder::add_document(Document doc) {
    docs_.push_back(std::move(doc));
}

DocumentStore DocStoreBuilder::build() && {
    compress::TextModelBuilder model;
    for (const auto& d : docs_) model.add_document(d.text);
    // Singletons are escape-coded rather than carried in the model; this
    // is the min_count=2 variant MG recommends for large collections.
    compress::TextCodec codec = model.build(/*min_count=*/2);

    std::vector<std::string> ids;
    std::vector<std::vector<std::uint8_t>> blobs;
    ids.reserve(docs_.size());
    blobs.reserve(docs_.size());
    std::uint64_t raw_bytes = 0;
    for (auto& d : docs_) {
        raw_bytes += d.text.size();
        blobs.push_back(codec.encode(d.text));
        ids.push_back(std::move(d.external_id));
    }
    docs_.clear();
    return DocumentStore(std::move(codec), std::move(ids), std::move(blobs), raw_bytes);
}

DocumentStore::DocumentStore(compress::TextCodec codec, std::vector<std::string> external_ids,
                             std::vector<std::vector<std::uint8_t>> blobs,
                             std::uint64_t raw_bytes)
    : codec_(std::move(codec)),
      external_ids_(std::move(external_ids)),
      blobs_(std::move(blobs)),
      total_raw_(raw_bytes) {
    TERAPHIM_ASSERT(external_ids_.size() == blobs_.size());
    for (const auto& b : blobs_) total_compressed_ += b.size();
    // Raw per-document sizes are recovered lazily on first call to
    // raw_bytes(); store builders record only the total to avoid a
    // second decode pass. See raw_bytes().
}

const std::vector<std::uint8_t>& DocumentStore::blob(DocNum doc) const {
    TERAPHIM_ASSERT(doc < blobs_.size());
    return blobs_[doc];
}

std::string DocumentStore::fetch(DocNum doc) const {
    return codec_.decode(blob(doc));
}

std::span<const std::uint8_t> DocumentStore::compressed(DocNum doc) const {
    return blob(doc);
}

const std::string& DocumentStore::external_id(DocNum doc) const {
    TERAPHIM_ASSERT(doc < external_ids_.size());
    return external_ids_[doc];
}

DocumentStore DocumentStore::with_appended(std::span<const Document> docs) const {
    std::vector<std::string> ids = external_ids_;
    std::vector<std::vector<std::uint8_t>> blobs = blobs_;
    ids.reserve(ids.size() + docs.size());
    blobs.reserve(blobs.size() + docs.size());
    std::uint64_t raw_bytes = total_raw_;
    for (const Document& d : docs) {
        raw_bytes += d.text.size();
        blobs.push_back(codec_.encode(d.text));
        ids.push_back(d.external_id);
    }
    return DocumentStore(codec_, std::move(ids), std::move(blobs), raw_bytes);
}

std::uint64_t DocumentStore::raw_bytes(DocNum doc) const {
    // Decoding is cheap relative to network simulation, and this path is
    // used only for accounting of fetched documents (k per query).
    return fetch(doc).size();
}

}  // namespace teraphim::store
