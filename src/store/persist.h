// On-disk persistence for compressed document stores.
//
// The codec travels with the data: the file carries both token models
// (vocabulary + canonical code lengths) followed by the per-document
// compressed blobs, exactly as stored — documents are never re-encoded,
// so a loaded store serves byte-identical blobs to the saved one.
#pragma once

#include <cstdint>
#include <string>

#include "net/serialize.h"
#include "store/docstore.h"

namespace teraphim::store {

/// File magic: "TPDS" followed by a format version byte.
inline constexpr std::uint32_t kStoreMagic = 0x53445054;  // 'TPDS' little-endian
inline constexpr std::uint8_t kStoreFormatVersion = 1;

void serialize_store(const DocumentStore& store, net::Writer& out);
DocumentStore deserialize_store(net::Reader& in);

void save_store(const DocumentStore& store, const std::string& path);
DocumentStore load_store(const std::string& path);

}  // namespace teraphim::store
