// Compressed document store.
//
// TERAPHIM inherits MG's property that "all documents are stored
// compressed", which both shrinks the store and lets librarians ship
// documents over the network in compressed form without re-encoding
// (Section 4, Analysis). The store keeps one word-model Huffman codec
// per collection and a compressed blob per document.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "compress/textcodec.h"

namespace teraphim::store {

/// Local document number within one (sub)collection, 0-based.
using DocNum = std::uint32_t;

/// A source document prior to indexing.
struct Document {
    std::string external_id;  ///< e.g. "AP880212-0001"
    std::string text;
};

class DocumentStore;

/// Two-pass builder: pass one trains the text model over every document,
/// pass two encodes them. add_document() order defines DocNum order.
class DocStoreBuilder {
public:
    void add_document(Document doc);
    std::size_t document_count() const { return docs_.size(); }

    /// Consumes the builder and produces the immutable store.
    DocumentStore build() &&;

private:
    std::vector<Document> docs_;
};

/// Immutable compressed store for one subcollection.
class DocumentStore {
public:
    DocumentStore(compress::TextCodec codec, std::vector<std::string> external_ids,
                  std::vector<std::vector<std::uint8_t>> blobs,
                  std::uint64_t raw_bytes);

    std::size_t size() const { return blobs_.size(); }

    /// Decompresses and returns the document text.
    std::string fetch(DocNum doc) const;

    /// The compressed bytes as stored — what travels on the wire when
    /// compressed transfer is enabled.
    std::span<const std::uint8_t> compressed(DocNum doc) const;

    const std::string& external_id(DocNum doc) const;

    std::uint64_t compressed_bytes(DocNum doc) const { return blob(doc).size(); }

    /// Original (uncompressed) size of one document.
    std::uint64_t raw_bytes(DocNum doc) const;

    /// Whole-store accounting.
    std::uint64_t total_compressed_bytes() const { return total_compressed_; }
    std::uint64_t total_raw_bytes() const { return total_raw_; }
    std::uint64_t model_bytes() const { return codec_.model_bytes(); }

    const compress::TextCodec& codec() const { return codec_; }

    /// A new store holding this store's documents followed by `docs`,
    /// compressed with the *existing* codec (its escape symbol spells
    /// out tokens the model never saw, so encoding stays lossless; the
    /// model is simply no longer tuned for the appended text). Used by
    /// live-collection compaction, which must not re-train the model —
    /// outstanding compressed-form transfers and accounting stay
    /// comparable across the swap.
    DocumentStore with_appended(std::span<const Document> docs) const;

private:
    const std::vector<std::uint8_t>& blob(DocNum doc) const;

    compress::TextCodec codec_;
    std::vector<std::string> external_ids_;
    std::vector<std::vector<std::uint8_t>> blobs_;
    std::uint64_t total_compressed_ = 0;
    std::uint64_t total_raw_ = 0;
};

}  // namespace teraphim::store
