// Deterministic pseudo-random number generation.
//
// All stochastic components (corpus generation, workload sampling) draw
// from Rng so that every experiment in the repository is reproducible
// from a seed. The generator is xoshiro256**, seeded via splitmix64.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace teraphim::util {

/// Mixes a 64-bit state into a well-distributed output; used for seeding.
std::uint64_t splitmix64(std::uint64_t& state);

/// Fast, high-quality, reproducible PRNG (xoshiro256**).
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /// Next raw 64-bit value.
    std::uint64_t next();

    // UniformRandomBitGenerator interface so Rng works with <random> too.
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }
    result_type operator()() { return next(); }

    /// Uniform integer in [0, bound). bound must be > 0.
    std::uint64_t below(std::uint64_t bound);

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t between(std::int64_t lo, std::int64_t hi);

    /// Uniform double in [0, 1).
    double uniform();

    /// Standard normal variate (Box-Muller).
    double normal();

    /// Normal with given mean and standard deviation.
    double normal(double mean, double stddev) { return mean + stddev * normal(); }

    /// True with probability p.
    bool chance(double p) { return uniform() < p; }

    /// Sample an index according to non-negative weights (linear scan).
    std::size_t weighted(std::span<const double> weights);

    /// Fork a statistically independent child generator. Forking the same
    /// parent state twice yields the same child, keeping experiments
    /// reproducible even when components consume randomness lazily.
    Rng fork();

private:
    std::array<std::uint64_t, 4> s_;
    bool have_spare_normal_ = false;
    double spare_normal_ = 0.0;
};

/// Sampling from a fixed discrete distribution in O(1) per draw
/// (Walker/Vose alias method). Used for Zipfian term sampling where the
/// support is the whole vocabulary.
class AliasSampler {
public:
    /// Builds the alias table from non-negative weights (need not be
    /// normalised). Weights must contain at least one positive entry.
    explicit AliasSampler(std::span<const double> weights);

    std::size_t sample(Rng& rng) const;
    std::size_t size() const { return prob_.size(); }

private:
    std::vector<double> prob_;
    std::vector<std::uint32_t> alias_;
};

}  // namespace teraphim::util
