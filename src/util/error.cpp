#include "util/error.h"

#include <sstream>

namespace teraphim::detail {

void assertion_failure(const char* expr, const char* file, int line, const std::string& msg) {
    std::ostringstream os;
    os << "assertion failed: " << expr << " at " << file << ":" << line;
    if (!msg.empty()) os << " (" << msg << ")";
    throw Error(os.str());
}

}  // namespace teraphim::detail
