// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace teraphim::util {

/// ASCII lower-casing (the corpus generator emits ASCII only).
std::string to_lower(std::string_view s);

/// Splits on any occurrence of a delimiter character; empty fields dropped.
std::vector<std::string> split(std::string_view s, char delim);

/// Joins parts with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Human-readable byte count, e.g. "12.3 MB".
std::string format_bytes(std::uint64_t bytes);

/// Fixed-point formatting, e.g. format_fixed(1.2345, 2) == "1.23".
std::string format_fixed(double value, int decimals);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

}  // namespace teraphim::util
