// A small fixed-size thread pool for scatter-gather work.
//
// Two callers share this primitive: the receptionist fans one query out
// to S librarians and gathers the responses in slot order (dir/
// receptionist.h), and MessageServer hands each accepted connection to a
// worker so one librarian process can serve many sessions at once
// (net/tcp.h). Both need the same shape — a bounded set of long-lived
// threads draining a task queue — and neither needs futures, priorities
// or work stealing, so the pool provides exactly submit() and a blocking
// parallel_for() whose exception semantics preserve slot order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace teraphim::util {

class ThreadPool {
public:
    /// Spawns `threads` workers (at least 1).
    explicit ThreadPool(std::size_t threads);

    /// Drains the queue, then joins the workers. Tasks submitted during
    /// destruction are not accepted.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const { return workers_.size(); }

    /// Enqueues a task for execution on some worker. The task must not
    /// throw (wrap anything that can; parallel_for does this for you).
    void submit(std::function<void()> task);

    /// Blocks until the queue is empty and every worker is between
    /// tasks. Only meaningful when the caller knows no new work is being
    /// submitted concurrently (e.g. a server draining on shutdown).
    void wait_idle();

    /// Runs fn(0) ... fn(n-1) across the pool and blocks until every
    /// call returned. If any calls threw, rethrows the exception of the
    /// lowest index — the same exception a sequential `for` loop would
    /// have surfaced first — after all slots finished, so slot-indexed
    /// output vectors are never touched by a straggler afterwards.
    ///
    /// Must not be called from inside a pool task (the worker would wait
    /// on work only it can run).
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable work_available_;
    std::condition_variable idle_;
    std::size_t running_ = 0;  ///< tasks currently executing
    bool stopping_ = false;
};

/// Number of workers for fanning out to `slots` peers: one per slot
/// (always at least one). Fan-out threads spend their lives blocked on
/// sockets, not burning CPU, so the count is deliberately independent of
/// the core count — a single-core receptionist still overlaps the
/// latencies of all its librarians. A fixed cap bounds thread creation
/// for very wide federations.
std::size_t default_fanout_threads(std::size_t slots);

}  // namespace teraphim::util
