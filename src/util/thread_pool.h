// A small fixed-size thread pool for scatter-gather work.
//
// Two callers share this primitive: the receptionist fans one query out
// to S librarians and gathers the responses in slot order (dir/
// receptionist.h), and MessageServer hands each accepted connection to a
// worker so one librarian process can serve many sessions at once
// (net/tcp.h). Both need the same shape — a bounded set of long-lived
// threads draining a task queue — and neither needs futures, priorities
// or work stealing, so the pool provides exactly submit() and a blocking
// parallel_for() whose exception semantics preserve slot order.
//
// The queue can be bounded (PoolOptions::capacity) so a server under
// overload stops accumulating work it will never finish in time: with
// Overflow::Reject a full queue fails try_submit() immediately and the
// caller sheds the request (net/tcp.cpp answers Overloaded); with
// Overflow::Block the submitter waits for space, which applies
// backpressure to in-process producers. Queue depth / in-flight gauges
// and a rejection counter can be wired to an obs registry (set_metrics)
// so saturation is visible before it becomes an outage.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace teraphim::util {

/// What submit() does when a bounded queue is full.
enum class Overflow {
    Block,   ///< wait until a worker frees a slot (backpressure)
    Reject,  ///< fail immediately (admission control / load shedding)
};

struct PoolOptions {
    /// Maximum queued (not yet running) tasks; 0 means unbounded, which
    /// preserves the pre-overload-PR behaviour.
    std::size_t capacity = 0;
    Overflow overflow = Overflow::Block;
};

/// Optional observability hooks; any pointer may stay null.
struct PoolMetrics {
    obs::Gauge* queue_depth = nullptr;  ///< tasks waiting in the queue
    obs::Gauge* in_flight = nullptr;    ///< tasks currently executing
    obs::Counter* rejected = nullptr;   ///< submissions refused (full or stopping)
};

class ThreadPool {
public:
    /// Spawns `threads` workers (at least 1).
    explicit ThreadPool(std::size_t threads, PoolOptions options = {});

    /// Equivalent to stop().
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const { return workers_.size(); }

    /// Attaches gauges/counters that mirror the queue state. Safe to
    /// call while workers run; not safe concurrently with itself.
    void set_metrics(const PoolMetrics& metrics);

    /// Enqueues a task for execution on some worker. The task must not
    /// throw (wrap anything that can; parallel_for does this for you).
    ///
    /// Returns false — without queuing — when the pool is stopping or a
    /// bounded queue stayed full (Overflow::Reject, or Block woken by
    /// stop()). Callers that cannot tolerate a lost task must check the
    /// result; fire-and-forget callers may ignore it.
    [[nodiscard]] bool try_submit(std::function<void()> task);

    /// try_submit for callers that own the pool's lifetime and know the
    /// queue is unbounded (the historical contract). Asserts acceptance.
    void submit(std::function<void()> task);

    /// Blocks until the queue is empty and every worker is between
    /// tasks. Only meaningful when the caller knows no new work is being
    /// submitted concurrently (e.g. a server draining on shutdown).
    void wait_idle();

    /// Drains the queue, then joins the workers. Idempotent; called by
    /// the destructor. After stop() every try_submit() returns false
    /// (it used to be a fatal assertion, which could tear down a server
    /// that raced an accept against shutdown).
    void stop();

    /// Tasks waiting in the queue right now (racy snapshot).
    std::size_t queue_depth() const;
    /// Tasks executing right now (racy snapshot).
    std::size_t in_flight() const;

    /// Runs fn(0) ... fn(n-1) across the pool and blocks until every
    /// call returned. If any calls threw, rethrows the exception of the
    /// lowest index — the same exception a sequential `for` loop would
    /// have surfaced first — after all slots finished, so slot-indexed
    /// output vectors are never touched by a straggler afterwards.
    /// Slots the queue cannot accept run inline on the caller.
    ///
    /// Must not be called from inside a pool task (the worker would wait
    /// on work only it can run).
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

private:
    void worker_loop();
    void note_queue_locked();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mu_;
    std::condition_variable work_available_;
    std::condition_variable space_available_;
    std::condition_variable idle_;
    PoolOptions options_;
    PoolMetrics metrics_;
    std::size_t running_ = 0;  ///< tasks currently executing
    bool stopping_ = false;
};

/// Number of workers for fanning out to `slots` peers: one per slot
/// (always at least one). Fan-out threads spend their lives blocked on
/// sockets, not burning CPU, so the count is deliberately independent of
/// the core count — a single-core receptionist still overlaps the
/// latencies of all its librarians. A fixed cap bounds thread creation
/// for very wide federations.
std::size_t default_fanout_threads(std::size_t slots);

}  // namespace teraphim::util
