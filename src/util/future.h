// A minimal promise/future pair for the multiplexed transport.
//
// std::future cannot attach work to completion without burning a thread,
// but the mux demux loop (net/tcp.h) completes requests from its reader
// thread and fault decorators (dir/fault.h) need to transform a reply as
// it lands. This future supports exactly what the transport needs: one
// producer (set_value / set_exception), one consumer (get), and
// completion callbacks (on_ready).
#pragma once

#include <chrono>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "util/error.h"

namespace teraphim::util {

namespace detail {

template <typename T>
struct FutureState {
    std::mutex mu;
    std::condition_variable ready_cv;
    bool ready = false;
    std::optional<T> value;
    std::exception_ptr error;
    std::vector<std::function<void()>> callbacks;
};

/// Marks the state ready and runs the registered callbacks. The
/// callback list is swapped out under the lock and cleared so the
/// callback -> captured future -> state cycle is broken after the run.
template <typename T>
void complete(const std::shared_ptr<FutureState<T>>& state) {
    std::vector<std::function<void()>> callbacks;
    {
        std::lock_guard<std::mutex> lock(state->mu);
        state->ready = true;
        callbacks.swap(state->callbacks);
    }
    state->ready_cv.notify_all();
    for (auto& callback : callbacks) callback();
}

}  // namespace detail

template <typename T>
class Promise;

/// One-shot handle to a value (or error) that a producer will deliver
/// later. Move-only; get() consumes the value and may be called once.
template <typename T>
class Future {
public:
    Future() = default;

    bool valid() const { return state_ != nullptr; }

    bool ready() const {
        std::lock_guard<std::mutex> lock(state_->mu);
        return state_->ready;
    }

    /// Blocks until the producer completes, then returns the value or
    /// rethrows the producer's exception.
    T get() {
        std::unique_lock<std::mutex> lock(state_->mu);
        state_->ready_cv.wait(lock, [&] { return state_->ready; });
        if (state_->error) std::rethrow_exception(state_->error);
        T out = std::move(*state_->value);
        state_->value.reset();
        return out;
    }

    /// Blocks until the producer completes or `timeout` elapses.
    /// Returns true when the future is ready (get() will not block).
    /// Unlike get() this does not consume the value, so callers can
    /// poll with a deadline — the hedging and budget layers in
    /// dir/receptionist.cpp wait exactly as long as they can afford.
    template <typename Rep, typename Period>
    bool wait_for(std::chrono::duration<Rep, Period> timeout) const {
        std::unique_lock<std::mutex> lock(state_->mu);
        return state_->ready_cv.wait_for(lock, timeout, [&] { return state_->ready; });
    }

    /// Runs `fn` when the future becomes ready — immediately if it
    /// already is. `fn` runs on whichever thread completes the promise
    /// (the mux reader for TCP channels): keep it short and non-throwing.
    void on_ready(std::function<void()> fn) {
        {
            std::lock_guard<std::mutex> lock(state_->mu);
            if (!state_->ready) {
                state_->callbacks.push_back(std::move(fn));
                return;
            }
        }
        fn();
    }

private:
    friend class Promise<T>;
    explicit Future(std::shared_ptr<detail::FutureState<T>> state) : state_(std::move(state)) {}

    std::shared_ptr<detail::FutureState<T>> state_;
};

/// Producer side. Destroying an unfulfilled promise fails the future
/// with an IoError so no waiter can hang on an abandoned request.
template <typename T>
class Promise {
public:
    Promise() : state_(std::make_shared<detail::FutureState<T>>()) {}

    Promise(Promise&& other) noexcept : state_(std::move(other.state_)), claimed_(other.claimed_) {
        other.state_.reset();
    }
    Promise& operator=(Promise&& other) noexcept {
        if (this != &other) {
            abandon_if_unset();
            state_ = std::move(other.state_);
            claimed_ = other.claimed_;
            other.state_.reset();
        }
        return *this;
    }
    Promise(const Promise&) = delete;
    Promise& operator=(const Promise&) = delete;

    ~Promise() { abandon_if_unset(); }

    Future<T> future() { return Future<T>(state_); }

    void set_value(T value) {
        if (!claim()) return;
        {
            std::lock_guard<std::mutex> lock(state_->mu);
            state_->value.emplace(std::move(value));
        }
        detail::complete(state_);
    }

    void set_exception(std::exception_ptr error) {
        if (!claim()) return;
        {
            std::lock_guard<std::mutex> lock(state_->mu);
            state_->error = std::move(error);
        }
        detail::complete(state_);
    }

private:
    /// First completion wins; later set_* calls are ignored.
    bool claim() {
        std::lock_guard<std::mutex> lock(state_->mu);
        if (claimed_) return false;
        claimed_ = true;
        return true;
    }

    void abandon_if_unset() {
        if (state_ == nullptr) return;
        set_exception(std::make_exception_ptr(IoError("promise abandoned before completion")));
    }

    std::shared_ptr<detail::FutureState<T>> state_;
    bool claimed_ = false;
};

}  // namespace teraphim::util
