#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

#include "util/error.h"

namespace teraphim::util {

ThreadPool::ThreadPool(std::size_t threads, PoolOptions options) : options_(options) {
    workers_.reserve(std::max<std::size_t>(1, threads));
    for (std::size_t i = 0; i < std::max<std::size_t>(1, threads); ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() { stop(); }

void ThreadPool::stop() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    work_available_.notify_all();
    space_available_.notify_all();
    // workers_ is never shrunk, so size() stays valid and a second
    // stop() finds only already-joined (unjoinable) threads.
    for (std::thread& w : workers_) {
        if (w.joinable()) w.join();
    }
}

void ThreadPool::set_metrics(const PoolMetrics& metrics) {
    std::lock_guard<std::mutex> lock(mu_);
    metrics_ = metrics;
    note_queue_locked();
}

void ThreadPool::note_queue_locked() {
    if (metrics_.queue_depth != nullptr) {
        metrics_.queue_depth->set(static_cast<std::int64_t>(queue_.size()));
    }
    if (metrics_.in_flight != nullptr) {
        metrics_.in_flight->set(static_cast<std::int64_t>(running_));
    }
}

bool ThreadPool::try_submit(std::function<void()> task) {
    TERAPHIM_ASSERT(task != nullptr);
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (options_.capacity > 0 && queue_.size() >= options_.capacity && !stopping_) {
            if (options_.overflow == Overflow::Reject) {
                if (metrics_.rejected != nullptr) metrics_.rejected->inc();
                return false;
            }
            space_available_.wait(lock, [this] {
                return stopping_ || queue_.size() < options_.capacity;
            });
        }
        if (stopping_) {
            if (metrics_.rejected != nullptr) metrics_.rejected->inc();
            return false;
        }
        queue_.push_back(std::move(task));
        note_queue_locked();
    }
    work_available_.notify_one();
    return true;
}

void ThreadPool::submit(std::function<void()> task) {
    const bool accepted = try_submit(std::move(task));
    TERAPHIM_ASSERT_MSG(accepted, "submit() refused (stopping pool or bounded queue)");
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

std::size_t ThreadPool::queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

std::size_t ThreadPool::in_flight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return running_;
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            // Drain the queue even when stopping: a submitted task may
            // hold state (e.g. an accepted connection) that must be
            // released on a worker, not leaked.
            if (queue_.empty()) return;
            task = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
            note_queue_locked();
        }
        space_available_.notify_one();
        task();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --running_;
            note_queue_locked();
            if (queue_.empty() && running_ == 0) idle_.notify_all();
        }
    }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (n == 1 || workers_.empty()) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }

    struct Join {
        std::mutex mu;
        std::condition_variable done;
        std::size_t remaining;
        std::vector<std::exception_ptr> errors;
    };
    Join join;
    join.remaining = n;
    join.errors.assign(n, nullptr);

    for (std::size_t i = 0; i < n; ++i) {
        auto slot = [&join, &fn, i] {
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(join.mu);
                join.errors[i] = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(join.mu);
            if (--join.remaining == 0) join.done.notify_one();
        };
        // A rejected slot (bounded queue full, or a pool racing stop())
        // still runs — inline on the caller — so parallel_for keeps its
        // every-index-executes contract regardless of queue policy.
        if (!try_submit(slot)) slot();
    }

    std::unique_lock<std::mutex> lock(join.mu);
    join.done.wait(lock, [&join] { return join.remaining == 0; });
    for (std::exception_ptr& e : join.errors) {
        if (e) std::rethrow_exception(e);
    }
}

std::size_t default_fanout_threads(std::size_t slots) {
    constexpr std::size_t kMaxFanout = 32;
    return std::max<std::size_t>(1, std::min(slots, kMaxFanout));
}

}  // namespace teraphim::util
