#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

#include "util/error.h"

namespace teraphim::util {

ThreadPool::ThreadPool(std::size_t threads) {
    workers_.reserve(std::max<std::size_t>(1, threads));
    for (std::size_t i = 0; i < std::max<std::size_t>(1, threads); ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    TERAPHIM_ASSERT(task != nullptr);
    {
        std::lock_guard<std::mutex> lock(mu_);
        TERAPHIM_ASSERT_MSG(!stopping_, "submit() on a stopping ThreadPool");
        queue_.push_back(std::move(task));
    }
    work_available_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            // Drain the queue even when stopping: a submitted task may
            // hold state (e.g. an accepted connection) that must be
            // released on a worker, not leaked.
            if (queue_.empty()) return;
            task = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --running_;
            if (queue_.empty() && running_ == 0) idle_.notify_all();
        }
    }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (n == 1 || workers_.empty()) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }

    struct Join {
        std::mutex mu;
        std::condition_variable done;
        std::size_t remaining;
        std::vector<std::exception_ptr> errors;
    };
    Join join;
    join.remaining = n;
    join.errors.assign(n, nullptr);

    for (std::size_t i = 0; i < n; ++i) {
        submit([&join, &fn, i] {
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(join.mu);
                join.errors[i] = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(join.mu);
            if (--join.remaining == 0) join.done.notify_one();
        });
    }

    std::unique_lock<std::mutex> lock(join.mu);
    join.done.wait(lock, [&join] { return join.remaining == 0; });
    for (std::exception_ptr& e : join.errors) {
        if (e) std::rethrow_exception(e);
    }
}

std::size_t default_fanout_threads(std::size_t slots) {
    constexpr std::size_t kMaxFanout = 32;
    return std::max<std::size_t>(1, std::min(slots, kMaxFanout));
}

}  // namespace teraphim::util
