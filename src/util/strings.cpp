#include "util/strings.h"

#include <array>
#include <cctype>
#include <cstdio>

namespace teraphim::util {

std::string to_lower(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t end = s.find(delim, start);
        if (end == std::string_view::npos) end = s.size();
        if (end > start) out.emplace_back(s.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += sep;
        out += parts[i];
    }
    return out;
}

std::string format_bytes(std::uint64_t bytes) {
    static constexpr std::array<const char*, 5> kUnits{"B", "KB", "MB", "GB", "TB"};
    double value = static_cast<double>(bytes);
    std::size_t unit = 0;
    while (value >= 1024.0 && unit + 1 < kUnits.size()) {
        value /= 1024.0;
        ++unit;
    }
    char buf[32];
    if (unit == 0) {
        std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(bytes));
    } else {
        std::snprintf(buf, sizeof buf, "%.1f %s", value, kUnits[unit]);
    }
    return buf;
}

std::string format_fixed(double value, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    return buf;
}

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace teraphim::util
