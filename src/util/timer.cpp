#include "util/timer.h"

// Header-only today; the translation unit anchors the module in the build
// so additional timing facilities (CPU-time clocks) can land here without
// touching the build files.
