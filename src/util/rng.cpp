#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/error.h"

namespace teraphim::util {

std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

namespace {
std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
    TERAPHIM_ASSERT(bound > 0);
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold) return r % bound;
    }
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
    TERAPHIM_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next() : below(span));
}

double Rng::uniform() {
    // 53 random mantissa bits -> uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::normal() {
    if (have_spare_normal_) {
        have_spare_normal_ = false;
        return spare_normal_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    spare_normal_ = r * std::sin(theta);
    have_spare_normal_ = true;
    return r * std::cos(theta);
}

std::size_t Rng::weighted(std::span<const double> weights) {
    TERAPHIM_ASSERT(!weights.empty());
    double total = 0.0;
    for (double w : weights) {
        TERAPHIM_ASSERT(w >= 0.0);
        total += w;
    }
    TERAPHIM_ASSERT(total > 0.0);
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        x -= weights[i];
        if (x < 0.0) return i;
    }
    return weights.size() - 1;
}

Rng Rng::fork() {
    Rng child(0);
    child.s_ = {next(), next(), next(), next()};
    return child;
}

AliasSampler::AliasSampler(std::span<const double> weights) {
    TERAPHIM_ASSERT(!weights.empty());
    const std::size_t n = weights.size();
    double total = 0.0;
    for (double w : weights) {
        TERAPHIM_ASSERT(w >= 0.0);
        total += w;
    }
    TERAPHIM_ASSERT(total > 0.0);

    prob_.assign(n, 0.0);
    alias_.assign(n, 0);
    std::vector<double> scaled(n);
    for (std::size_t i = 0; i < n; ++i) scaled[i] = weights[i] * static_cast<double>(n) / total;

    std::vector<std::uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
        const std::uint32_t lo = small.back();
        small.pop_back();
        const std::uint32_t hi = large.back();
        prob_[lo] = scaled[lo];
        alias_[lo] = hi;
        scaled[hi] = (scaled[hi] + scaled[lo]) - 1.0;
        if (scaled[hi] < 1.0) {
            large.pop_back();
            small.push_back(hi);
        }
    }
    for (std::uint32_t i : large) prob_[i] = 1.0;
    for (std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t AliasSampler::sample(Rng& rng) const {
    const std::size_t i = static_cast<std::size_t>(rng.below(prob_.size()));
    return rng.uniform() < prob_[i] ? i : alias_[i];
}

}  // namespace teraphim::util
