// Wall-clock timing for the real (non-simulated) measurements.
#pragma once

#include <chrono>

namespace teraphim::util {

/// Monotonic stopwatch. Construction starts it.
class Timer {
public:
    Timer() : start_(clock::now()) {}

    void restart() { start_ = clock::now(); }

    /// Seconds elapsed since construction or the last restart().
    double elapsed_seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    /// Milliseconds elapsed.
    double elapsed_ms() const { return elapsed_seconds() * 1e3; }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace teraphim::util
