// Error handling primitives for TERAPHIM.
//
// All recoverable failures are reported with exceptions derived from
// teraphim::Error. Programming-logic preconditions are checked with
// TERAPHIM_ASSERT (active in all build types; these guard index and
// protocol invariants whose violation would otherwise corrupt results
// silently, and they are far off the hot paths).
#pragma once

#include <stdexcept>
#include <string>

namespace teraphim {

/// Base class of all exceptions thrown by the library.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input data (corrupt compressed stream, bad query syntax, ...).
class DataError : public Error {
public:
    explicit DataError(const std::string& what) : Error(what) {}
};

/// I/O failures (file or socket).
class IoError : public Error {
public:
    explicit IoError(const std::string& what) : Error(what) {}
};

/// A deadline expired before the peer answered (connect, send or recv).
/// Derived from IoError so fail-fast callers keep working; the
/// receptionist's retry layer distinguishes it for reporting.
class TimeoutError : public IoError {
public:
    explicit TimeoutError(const std::string& what) : IoError(what) {}
};

/// Wire-protocol violations between receptionist and librarian.
class ProtocolError : public Error {
public:
    explicit ProtocolError(const std::string& what) : Error(what) {}
};

/// An explicit Error frame reported by a live librarian. Unlike a
/// garbled or truncated frame this is not transport corruption — the
/// peer is up and answering — so the retry layer treats it as
/// permanent rather than transient.
class RemoteError : public ProtocolError {
public:
    explicit RemoteError(const std::string& what) : ProtocolError(what) {}
};

namespace detail {
[[noreturn]] void assertion_failure(const char* expr, const char* file, int line,
                                    const std::string& msg);
}  // namespace detail

}  // namespace teraphim

/// Invariant check, active in every build type. Throws teraphim::Error.
#define TERAPHIM_ASSERT(expr)                                                      \
    do {                                                                           \
        if (!(expr)) ::teraphim::detail::assertion_failure(#expr, __FILE__, __LINE__, ""); \
    } while (false)

/// Invariant check with an explanatory message.
#define TERAPHIM_ASSERT_MSG(expr, msg)                                             \
    do {                                                                           \
        if (!(expr)) ::teraphim::detail::assertion_failure(#expr, __FILE__, __LINE__, (msg)); \
    } while (false)
