#include "corpus/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "corpus/topics.h"
#include "corpus/zipf.h"
#include "util/error.h"

namespace teraphim::corpus {

namespace {

constexpr int kLongQueryFirstId = 51;
constexpr int kShortQueryFirstId = 202;

/// A scheduled topical document: which topic it carries and how strongly.
struct TopicalSlot {
    std::uint32_t topic = 0;
    double mixture = 0.0;
};

std::string external_id(const std::string& sub_name, std::uint32_t num) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "-%06u", num);
    return sub_name + buf;
}

/// Renders a token stream as document text with sentence and paragraph
/// structure, so the Huffman text codec sees realistic material.
std::string render_text(const std::vector<std::string_view>& tokens, util::Rng& rng) {
    std::string out;
    out.reserve(tokens.size() * 8);
    std::size_t sentence_len = 0;
    std::size_t sentence_target = 8 + rng.below(10);
    std::size_t sentences_in_par = 0;
    std::size_t par_target = 4 + rng.below(4);
    bool start_of_sentence = true;
    for (std::string_view tok : tokens) {
        if (start_of_sentence) {
            std::string word(tok);
            if (!word.empty()) word[0] = static_cast<char>(word[0] - 'a' + 'A');
            out += word;
            start_of_sentence = false;
        } else {
            out += ' ';
            out += tok;
        }
        if (++sentence_len >= sentence_target) {
            out += '.';
            sentence_len = 0;
            sentence_target = 8 + rng.below(10);
            start_of_sentence = true;
            if (++sentences_in_par >= par_target) {
                out += "\n\n";
                sentences_in_par = 0;
                par_target = 4 + rng.below(4);
            } else {
                out += ' ';
            }
        }
    }
    if (!start_of_sentence) out += '.';
    return out;
}

}  // namespace

std::uint32_t SyntheticCorpus::total_documents() const {
    std::uint32_t total = 0;
    for (const auto& sub : subcollections) {
        total += static_cast<std::uint32_t>(sub.documents.size());
    }
    return total;
}

SyntheticCorpus generate_corpus(const CorpusConfig& config) {
    TERAPHIM_ASSERT(!config.subcollections.empty());
    TERAPHIM_ASSERT(config.vocab_size > config.topic_term_floor);
    TERAPHIM_ASSERT(config.mixture_min < config.relevance_threshold &&
                    config.relevance_threshold < config.mixture_max);

    util::Rng rng(config.seed);
    const std::size_t num_subs = config.subcollections.size();
    const std::uint32_t num_topics = config.num_long_topics + config.num_short_topics;

    // --- Vocabulary and per-subcollection background samplers ----------
    const std::vector<std::string> vocab = generate_vocabulary(config.vocab_size, rng);
    const std::vector<double> background = zipf_weights(config.vocab_size, config.zipf_s);

    std::vector<util::AliasSampler> sub_samplers;
    sub_samplers.reserve(num_subs);
    for (std::size_t s = 0; s < num_subs; ++s) {
        std::vector<double> biased = background;
        for (auto& w : biased) {
            if (rng.chance(config.dialect_fraction)) {
                // Log-uniform factor in [1/strength, strength].
                const double e = rng.uniform() * 2.0 - 1.0;
                w *= std::pow(config.dialect_strength, e);
            }
        }
        sub_samplers.emplace_back(std::span<const double>(biased));
    }

    // --- Topics and their home subcollections --------------------------
    std::vector<Topic> topics;
    topics.reserve(num_topics);
    const std::uint32_t ceiling =
        config.topic_term_ceiling != 0
            ? config.topic_term_ceiling
            : std::max(config.topic_term_floor + config.terms_per_topic,
                       config.vocab_size / 4);
    for (std::uint32_t t = 0; t < num_topics; ++t) {
        topics.emplace_back(ceiling, config.topic_term_floor, config.terms_per_topic, rng,
                            config.topic_skew);
    }
    // A topic's relevant documents concentrate in its home subcollection,
    // mimicking "most of the relevant documents were in AP and WSJ".
    std::vector<std::size_t> topic_home(num_topics);
    {
        std::vector<double> sub_mass(num_subs);
        for (std::size_t s = 0; s < num_subs; ++s) {
            sub_mass[s] = static_cast<double>(config.subcollections[s].num_docs);
        }
        for (std::uint32_t t = 0; t < num_topics; ++t) {
            topic_home[t] = rng.weighted(sub_mass);
        }
    }

    // --- Schedule topical documents ------------------------------------
    // Quotas guarantee every topic enough relevant documents regardless
    // of sampling luck.
    std::vector<std::uint32_t> sub_topical_capacity(num_subs);
    std::uint32_t total_topical = 0;
    for (std::size_t s = 0; s < num_subs; ++s) {
        sub_topical_capacity[s] = static_cast<std::uint32_t>(
            config.topical_doc_fraction *
            static_cast<double>(config.subcollections[s].num_docs));
        total_topical += sub_topical_capacity[s];
    }
    TERAPHIM_ASSERT_MSG(total_topical >= num_topics,
                        "corpus too small for the requested number of topics");

    std::vector<std::vector<TopicalSlot>> sub_slots(num_subs);
    std::vector<std::uint32_t> remaining = sub_topical_capacity;
    std::uint32_t scheduled = 0;
    // Round-robin over topics so quotas stay balanced; within a topic,
    // place instances preferentially in the home subcollection.
    for (std::uint32_t round = 0; scheduled < total_topical; ++round) {
        for (std::uint32_t t = 0; t < num_topics && scheduled < total_topical; ++t) {
            std::vector<double> w(num_subs, 0.0);
            double total_w = 0.0;
            for (std::size_t s = 0; s < num_subs; ++s) {
                if (remaining[s] == 0) continue;
                w[s] = static_cast<double>(remaining[s]) * (topic_home[t] == s ? 6.0 : 1.0);
                total_w += w[s];
            }
            if (total_w == 0.0) break;
            const std::size_t s = rng.weighted(w);
            // The first two rounds are forced-relevant so every topic has
            // judged documents; later rounds span the whole range.
            const double mixture =
                round < 2
                    ? config.relevance_threshold +
                          rng.uniform() * (config.mixture_max - config.relevance_threshold)
                    : config.mixture_min +
                          rng.uniform() * (config.mixture_max - config.mixture_min);
            sub_slots[s].push_back({t, mixture});
            --remaining[s];
            ++scheduled;
        }
    }
    // Arrange each subcollection's topical documents in *bursts*: runs of
    // adjacent documents about the same topic, the way newswire stories
    // about one event appear on consecutive days. Document adjacency is
    // what makes the paper's grouped central index effective (adjacent
    // documents collected into groups share topics, ref [13]).
    std::vector<std::vector<std::vector<TopicalSlot>>> sub_bursts(num_subs);
    for (std::size_t s = 0; s < num_subs; ++s) {
        std::vector<std::vector<TopicalSlot>> by_topic(num_topics);
        for (const TopicalSlot& slot : sub_slots[s]) by_topic[slot.topic].push_back(slot);
        for (std::uint32_t t = 0; t < num_topics; ++t) {
            auto& slots = by_topic[t];
            std::size_t i = 0;
            while (i < slots.size()) {
                const std::size_t burst_len =
                    std::min<std::size_t>(slots.size() - i, 1 + rng.below(5));
                sub_bursts[s].emplace_back(slots.begin() + static_cast<std::ptrdiff_t>(i),
                                           slots.begin() +
                                               static_cast<std::ptrdiff_t>(i + burst_len));
                i += burst_len;
            }
        }
        std::shuffle(sub_bursts[s].begin(), sub_bursts[s].end(), rng);
    }

    // --- Generate the documents ----------------------------------------
    SyntheticCorpus corpus;
    corpus.subcollections.resize(num_subs);
    const auto query_id_of = [&](std::uint32_t topic) {
        return topic < config.num_long_topics
                   ? kLongQueryFirstId + static_cast<int>(topic)
                   : kShortQueryFirstId + static_cast<int>(topic - config.num_long_topics);
    };

    std::vector<std::string_view> tokens;
    for (std::size_t s = 0; s < num_subs; ++s) {
        const SubcollectionProfile& profile = config.subcollections[s];
        Subcollection& sub = corpus.subcollections[s];
        sub.name = profile.name;
        sub.documents.reserve(profile.num_docs);

        // Lay the shuffled bursts onto document positions: a burst, once
        // started, occupies consecutive positions; gaps between bursts
        // are background documents.
        std::vector<const TopicalSlot*> slot_at(profile.num_docs, nullptr);
        {
            const auto& bursts = sub_bursts[s];
            std::size_t slots_left = 0;
            for (const auto& b : bursts) slots_left += b.size();
            std::size_t burst_index = 0;
            std::size_t within = 0;
            bool in_burst = false;
            for (std::uint32_t d = 0; d < profile.num_docs; ++d) {
                const std::size_t docs_left = profile.num_docs - d;
                if (!in_burst && burst_index < bursts.size()) {
                    // Start probability keeps expected coverage exact; a
                    // forced start guarantees every slot is placed.
                    const double p =
                        static_cast<double>(slots_left) / static_cast<double>(docs_left);
                    if (docs_left <= slots_left || rng.chance(p)) {
                        in_burst = true;
                        within = 0;
                    }
                }
                if (in_burst) {
                    slot_at[d] = &bursts[burst_index][within];
                    --slots_left;
                    if (++within == bursts[burst_index].size()) {
                        in_burst = false;
                        ++burst_index;
                    }
                }
            }
            TERAPHIM_ASSERT_MSG(slots_left == 0, "burst layout left slots unplaced");
        }

        for (std::uint32_t d = 0; d < profile.num_docs; ++d) {
            const double len_draw =
                std::exp(std::log(profile.mean_doc_terms) +
                         profile.doc_terms_sigma * rng.normal() -
                         0.5 * profile.doc_terms_sigma * profile.doc_terms_sigma);
            const auto num_terms = static_cast<std::uint32_t>(
                std::clamp(len_draw, 30.0, 3000.0));

            tokens.clear();
            tokens.reserve(num_terms);
            std::string id = external_id(sub.name, d);

            if (slot_at[d] != nullptr) {
                const TopicalSlot& slot = *slot_at[d];
                const Topic& topic = topics[slot.topic];
                // The document discusses its own *aspect* of the topic:
                // topical tokens come from a per-document subset of the
                // topic terms, weighted by the topic distribution.
                const auto aspect = topic.sample_aspect(config.doc_aspect_terms, rng);
                std::vector<double> aspect_weights;
                aspect_weights.reserve(aspect.size());
                for (std::size_t i : aspect) aspect_weights.push_back(topic.weight(i));
                // A quarter of topical documents also carry a weak
                // secondary topic, blurring topic boundaries.
                const bool has_secondary = rng.chance(0.25);
                const std::uint32_t secondary =
                    has_secondary ? static_cast<std::uint32_t>(rng.below(num_topics)) : 0;
                for (std::uint32_t i = 0; i < num_terms; ++i) {
                    const double u = rng.uniform();
                    std::uint32_t term;
                    if (u < slot.mixture) {
                        term = topic.term(aspect[rng.weighted(aspect_weights)]);
                    } else if (has_secondary && u < slot.mixture + 0.08) {
                        term = topics[secondary].sample(rng);
                    } else {
                        term = static_cast<std::uint32_t>(sub_samplers[s].sample(rng));
                    }
                    tokens.push_back(vocab[term]);
                }
                if (slot.mixture >= config.relevance_threshold) {
                    corpus.judgments.add(query_id_of(slot.topic), id);
                }
            } else {
                for (std::uint32_t i = 0; i < num_terms; ++i) {
                    tokens.push_back(vocab[sub_samplers[s].sample(rng)]);
                }
            }

            sub.documents.push_back({std::move(id), render_text(tokens, rng)});
        }
    }

    // --- Queries ---------------------------------------------------------
    const auto sample_distinct_topic_terms = [&](const Topic& topic, std::size_t want) {
        std::vector<std::uint32_t> out;
        std::unordered_set<std::uint32_t> seen;
        // Weighted sampling with rejection; bounded because want <=
        // terms_per_topic.
        std::size_t guard = 0;
        while (out.size() < want && guard++ < 10000) {
            const std::uint32_t term = topic.sample(rng);
            if (seen.insert(term).second) out.push_back(term);
        }
        return out;
    };

    corpus.long_queries.name = "Long queries (51-" +
                               std::to_string(kLongQueryFirstId +
                                              static_cast<int>(config.num_long_topics) - 1) +
                               ")";
    corpus.short_queries.name =
        "Short queries (202-" +
        std::to_string(kShortQueryFirstId + static_cast<int>(config.num_short_topics) - 1) +
        ")";

    for (std::uint32_t t = 0; t < num_topics; ++t) {
        const bool is_long = t < config.num_long_topics;
        const Topic& topic = topics[t];
        std::string text;
        if (is_long) {
            // Verbose TREC-topic style: a topical core plus background
            // narrative noise, with natural term repetition.
            const auto core = sample_distinct_topic_terms(
                topic, std::min<std::size_t>(16, topic.terms().size()));
            for (std::uint32_t i = 0; i < config.long_query_terms; ++i) {
                const double u = rng.uniform();
                std::uint32_t term;
                if (u < 0.45 && !core.empty()) {
                    term = core[rng.below(core.size())];
                } else {
                    term = static_cast<std::uint32_t>(
                        sub_samplers[rng.below(num_subs)].sample(rng));
                }
                if (!text.empty()) text += ' ';
                text += vocab[term];
            }
        } else {
            // Title-style: a handful of distinct characteristic terms,
            // plus a little background noise (real short queries contain
            // non-discriminative words even after stopping).
            const std::size_t noise =
                std::min<std::size_t>(config.short_query_noise_terms,
                                      config.short_query_terms);
            const auto core = sample_distinct_topic_terms(
                topic, std::min<std::size_t>(config.short_query_terms - noise,
                                             topic.terms().size()));
            for (std::uint32_t term : core) {
                if (!text.empty()) text += ' ';
                text += vocab[term];
            }
            for (std::size_t i = 0; i < noise; ++i) {
                const auto term = static_cast<std::uint32_t>(
                    sub_samplers[rng.below(num_subs)].sample(rng));
                if (!text.empty()) text += ' ';
                text += vocab[term];
            }
        }
        const int id = query_id_of(t);
        (is_long ? corpus.long_queries : corpus.short_queries)
            .queries.push_back({id, std::move(text)});
    }

    return corpus;
}

std::vector<Subcollection> resplit(const SyntheticCorpus& corpus, std::size_t n,
                                   std::uint64_t seed) {
    TERAPHIM_ASSERT(n >= 1);
    std::vector<const store::Document*> all;
    for (const auto& sub : corpus.subcollections) {
        for (const auto& doc : sub.documents) all.push_back(&doc);
    }
    TERAPHIM_ASSERT(all.size() >= n);

    // Geometric spread of sizes (largest ~8x the smallest, echoing the
    // paper's "just over 1000 to just under 10,000 documents"), shuffled
    // so size does not correlate with position.
    util::Rng rng(seed);
    std::vector<double> raw(n);
    for (std::size_t i = 0; i < n; ++i) {
        raw[i] = std::pow(8.0, n == 1 ? 0.0 : static_cast<double>(i) / (n - 1));
    }
    std::shuffle(raw.begin(), raw.end(), rng);
    const double total_raw = std::accumulate(raw.begin(), raw.end(), 0.0);

    std::vector<std::size_t> sizes(n);
    std::size_t assigned = 0;
    for (std::size_t i = 0; i < n; ++i) {
        sizes[i] = std::max<std::size_t>(
            1, static_cast<std::size_t>(raw[i] / total_raw * all.size()));
        assigned += sizes[i];
    }
    // Fix rounding drift on the last subcollection.
    while (assigned > all.size()) {
        for (std::size_t i = 0; i < n && assigned > all.size(); ++i) {
            if (sizes[i] > 1) {
                --sizes[i];
                --assigned;
            }
        }
    }
    sizes[n - 1] += all.size() - assigned;

    std::vector<Subcollection> out(n);
    std::size_t next = 0;
    for (std::size_t i = 0; i < n; ++i) {
        char name[16];
        std::snprintf(name, sizeof name, "S%02zu", i + 1);
        out[i].name = name;
        out[i].documents.reserve(sizes[i]);
        for (std::size_t d = 0; d < sizes[i]; ++d) {
            out[i].documents.push_back(*all[next++]);
        }
    }
    TERAPHIM_ASSERT(next == all.size());
    return out;
}

}  // namespace teraphim::corpus
