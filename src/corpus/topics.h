// Topic models for the synthetic corpus.
//
// Each TREC query in the paper corresponds to an information need with a
// judged set of relevant documents. The generator reproduces that
// structure with explicit topics: a topic is a skewed distribution over
// a small set of characteristic terms. Relevant documents mix topic
// terms into their background text; queries sample the same terms. The
// strength of the mixture controls how hard the topic is to retrieve.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace teraphim::corpus {

class Topic {
public:
    /// Draws `num_terms` distinct characteristic terms from the id range
    /// [first_eligible, ceiling) and assigns them Zipf(skew) weights.
    /// A small skew keeps the distribution broad, so different documents
    /// about the topic emphasise different terms — which is what makes
    /// retrieval imperfect, as with real topics. Keeping the ceiling low
    /// (mid-frequency words) means topic terms also occur routinely in
    /// background text, so term matches are ambiguous evidence.
    Topic(std::uint32_t ceiling, std::uint32_t first_eligible, std::uint32_t num_terms,
          util::Rng& rng, double skew = 0.5);

    /// Samples one term id from the full topic distribution.
    std::uint32_t sample(util::Rng& rng) const;

    /// Draws a document "aspect": `count` distinct term indices sampled
    /// by weight. A document about the topic uses only its aspect, so
    /// two relevant documents (or a document and a query) may share only
    /// a few terms.
    std::vector<std::size_t> sample_aspect(std::size_t count, util::Rng& rng) const;

    /// Characteristic terms, most heavily weighted first.
    const std::vector<std::uint32_t>& terms() const { return terms_; }

    /// Weight of the i-th characteristic term (unnormalised).
    double weight(std::size_t i) const { return weights_[i]; }

    std::uint32_t term(std::size_t i) const { return terms_[i]; }

private:
    std::vector<std::uint32_t> terms_;
    std::vector<double> weights_;
    util::AliasSampler sampler_;
};

}  // namespace teraphim::corpus
