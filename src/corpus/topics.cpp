#include "corpus/topics.h"

#include <unordered_set>

#include "corpus/zipf.h"
#include "util/error.h"

namespace teraphim::corpus {

Topic::Topic(std::uint32_t ceiling, std::uint32_t first_eligible, std::uint32_t num_terms,
             util::Rng& rng, double skew)
    : weights_(zipf_weights(num_terms, skew)),
      sampler_([this] { return std::span<const double>(weights_); }()) {
    TERAPHIM_ASSERT(first_eligible < ceiling);
    TERAPHIM_ASSERT(num_terms > 0 && num_terms <= ceiling - first_eligible);
    std::unordered_set<std::uint32_t> chosen;
    terms_.reserve(num_terms);
    while (terms_.size() < num_terms) {
        const auto id = static_cast<std::uint32_t>(
            first_eligible + rng.below(ceiling - first_eligible));
        if (chosen.insert(id).second) terms_.push_back(id);
    }
}

std::uint32_t Topic::sample(util::Rng& rng) const {
    return terms_[sampler_.sample(rng)];
}

std::vector<std::size_t> Topic::sample_aspect(std::size_t count, util::Rng& rng) const {
    TERAPHIM_ASSERT(count >= 1);
    if (count >= terms_.size()) {
        std::vector<std::size_t> all(terms_.size());
        for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
        return all;
    }
    std::unordered_set<std::size_t> chosen;
    std::vector<std::size_t> out;
    out.reserve(count);
    while (out.size() < count) {
        const std::size_t i = sampler_.sample(rng);
        if (chosen.insert(i).second) out.push_back(i);
    }
    return out;
}

}  // namespace teraphim::corpus
