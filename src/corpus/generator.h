// Synthetic TREC-like corpus generation.
//
// The paper evaluates on TREC disk two: about a gigabyte of text in four
// collections (AP, FR, WSJ, ZIFF), query sets 51-200 (long, ~90 terms
// after stopping) and 202-250 (short, ~9.6 terms), and NIST relevance
// judgments. None of that data can ship here, so this module generates a
// corpus with the same *mechanisms*:
//
//  * a Zipfian vocabulary, so index compression and list-length skew are
//    realistic;
//  * four subcollections with individual lexical "dialects", so local
//    and global term statistics genuinely diverge (the CN-vs-CV axis);
//  * explicit topics with relevance by construction, so the 11-pt
//    average and precision@20 of Table 1 can be computed;
//  * long and short query sets with TREC-style topic numbers.
//
// Everything is driven by one seed: the same config always yields the
// same corpus, queries and judgments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/queryset.h"
#include "store/docstore.h"
#include "util/rng.h"

namespace teraphim::corpus {

struct SubcollectionProfile {
    std::string name;
    std::uint32_t num_docs = 0;
    double mean_doc_terms = 180.0;  ///< mean indexed terms per document
    double doc_terms_sigma = 0.5;   ///< lognormal shape for document length
};

struct CorpusConfig {
    std::uint32_t vocab_size = 20000;
    double zipf_s = 1.05;

    /// Analogues of AP / WSJ / FR / ZIFF. Defaults give a small corpus
    /// suitable for tests; the benches scale num_docs up.
    std::vector<SubcollectionProfile> subcollections = {
        {"AP", 1500, 200.0, 0.4},
        {"WSJ", 1500, 180.0, 0.4},
        {"FR", 1000, 260.0, 0.6},
        {"ZIFF", 1000, 150.0, 0.5},
    };

    std::uint32_t num_long_topics = 16;   ///< queries numbered from 51
    std::uint32_t num_short_topics = 16;  ///< queries numbered from 202
    std::uint32_t terms_per_topic = 48;

    /// Skew of the within-topic term distribution (small = broad, which
    /// lowers query/document term overlap and makes retrieval harder).
    double topic_skew = 0.4;

    /// Each topical document draws its topical tokens from this many of
    /// the topic's terms (its "aspect"): relevant documents about the
    /// same topic then share only part of their vocabulary, as in real
    /// collections, so recall is imperfect.
    std::uint32_t doc_aspect_terms = 4;

    /// Topic terms are drawn from the Zipf rank band [floor, ceiling):
    /// frequent enough to pervade background text (ambiguous evidence),
    /// but not stop-word-like. ceiling of 0 means vocab_size / 4.
    std::uint32_t topic_term_floor = 100;
    std::uint32_t topic_term_ceiling = 0;

    /// Fraction of documents that carry a topic mixture.
    double topical_doc_fraction = 0.35;
    /// Topic mixture strength range for topical documents.
    double mixture_min = 0.03;
    double mixture_max = 0.15;
    /// Documents with mixture >= threshold are judged relevant.
    double relevance_threshold = 0.10;

    /// Per-subcollection dialect: each subcollection re-weights this
    /// fraction of the background vocabulary...
    double dialect_fraction = 0.15;
    /// ...by a factor drawn log-uniformly from [1/strength, strength].
    double dialect_strength = 4.0;

    std::uint32_t short_query_terms = 8;
    /// Of which this many are background noise rather than topic terms.
    std::uint32_t short_query_noise_terms = 3;
    std::uint32_t long_query_terms = 90;

    std::uint64_t seed = 42;
};

struct Subcollection {
    std::string name;
    std::vector<store::Document> documents;
};

struct SyntheticCorpus {
    std::vector<Subcollection> subcollections;
    eval::QuerySet long_queries;   ///< "Long queries (51-...)"
    eval::QuerySet short_queries;  ///< "Short queries (202-...)"
    eval::Judgments judgments;

    std::uint32_t total_documents() const;
};

/// Generates the full corpus + queries + judgments.
SyntheticCorpus generate_corpus(const CorpusConfig& config);

/// Redistributes all documents of `corpus` into `n` contiguous
/// subcollections of uneven sizes (geometric spread between the smallest
/// and largest, shuffled), reproducing the paper's "43 subcollections"
/// robustness experiment. Queries and judgments are unaffected because
/// they reference external document ids.
std::vector<Subcollection> resplit(const SyntheticCorpus& corpus, std::size_t n,
                                   std::uint64_t seed);

}  // namespace teraphim::corpus
