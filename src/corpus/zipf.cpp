#include "corpus/zipf.h"

#include <cmath>
#include <unordered_set>

#include "text/stopwords.h"
#include "util/error.h"

namespace teraphim::corpus {

std::vector<double> zipf_weights(std::size_t n, double s) {
    TERAPHIM_ASSERT(n > 0 && s > 0.0);
    std::vector<double> w(n);
    for (std::size_t i = 0; i < n; ++i) {
        w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
    }
    return w;
}

std::vector<std::string> generate_vocabulary(std::size_t count, util::Rng& rng) {
    static constexpr const char* kOnsets[] = {"b",  "c",  "d",  "f",  "g",  "h",  "j",
                                              "k",  "l",  "m",  "n",  "p",  "r",  "s",
                                              "t",  "v",  "w",  "z",  "br", "ch", "cl",
                                              "cr", "dr", "fl", "gr", "pl", "pr", "sh",
                                              "sl", "sp", "st", "str", "th", "tr"};
    static constexpr const char* kNuclei[] = {"a",  "e",  "i",  "o",  "u",  "ai", "au",
                                              "ea", "ee", "ia", "ie", "io", "oa", "oo",
                                              "ou", "ui"};
    static constexpr const char* kCodas[] = {"",   "",   "",  "b",  "ck", "d",  "g",
                                             "l",  "m",  "n", "nd", "ng", "nt", "p",
                                             "r",  "rd", "rm", "rn", "s",  "st", "t",
                                             "x"};

    const auto pick = [&rng](const auto& table) {
        return table[rng.below(std::size(table))];
    };

    std::vector<std::string> vocab;
    vocab.reserve(count);
    std::unordered_set<std::string> seen;
    const text::StopList& stops = text::StopList::english();
    while (vocab.size() < count) {
        std::string word;
        const std::uint64_t syllables = 2 + rng.below(3);  // 2-4 syllables
        for (std::uint64_t s = 0; s < syllables; ++s) {
            word += pick(kOnsets);
            word += pick(kNuclei);
            if (s + 1 == syllables || rng.chance(0.3)) word += pick(kCodas);
        }
        if (stops.contains(word)) continue;
        if (seen.insert(word).second) vocab.push_back(std::move(word));
    }
    return vocab;
}

}  // namespace teraphim::corpus
