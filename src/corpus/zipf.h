// Zipfian vocabulary machinery for the synthetic corpus.
//
// Natural-language term frequencies follow a Zipf law; the generator
// samples background text from one, which is what gives the synthetic
// inverted file the same compressed-size behaviour (few long lists, many
// short ones) as the TREC data the paper indexes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace teraphim::corpus {

/// Unnormalised Zipf weights w_i = 1/(i+1)^s for i in [0, n).
std::vector<double> zipf_weights(std::size_t n, double s);

/// Generates `count` distinct pronounceable lower-case pseudo-words,
/// none of which collide with the default English stop list. Determined
/// entirely by `rng`.
std::vector<std::string> generate_vocabulary(std::size_t count, util::Rng& rng);

}  // namespace teraphim::corpus
