#include "compress/textcodec.h"

#include <algorithm>
#include <cctype>

#include "compress/codecs.h"

namespace teraphim::compress {

namespace {
bool is_word_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

// Literal (escape-coded) token body: gamma(length + 1) then raw bytes.
void write_literal(BitWriter& w, std::string_view token) {
    write_gamma(w, token.size() + 1);
    for (char c : token) w.write_bits(static_cast<std::uint8_t>(c), 8);
}

std::string read_literal(BitReader& r) {
    const std::uint64_t len = read_gamma(r) - 1;
    std::string out;
    out.reserve(len);
    for (std::uint64_t i = 0; i < len; ++i) {
        out.push_back(static_cast<char>(r.read_bits(8)));
    }
    return out;
}
}  // namespace

std::vector<std::string> alternating_tokens(std::string_view text) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = pos;
        while (end < text.size() && is_word_char(text[end])) ++end;
        out.emplace_back(text.substr(pos, end - pos));  // word (may be empty)
        pos = end;
        while (end < text.size() && !is_word_char(text[end])) ++end;
        out.emplace_back(text.substr(pos, end - pos));  // nonword (may be empty)
        pos = end;
    }
    return out;  // even length by construction
}

TokenModel::TokenModel(std::vector<std::string> vocab, std::vector<std::uint64_t> freqs)
    : vocab_(std::move(vocab)),
      code_([&] {
          TERAPHIM_ASSERT(vocab_.size() == freqs.size());
          TERAPHIM_ASSERT_MSG(!freqs.empty() && freqs[0] > 0,
                              "symbol 0 must be the escape symbol with nonzero frequency");
          return HuffmanCode::from_frequencies(freqs);
      }()) {
    build_lookup();
}

TokenModel::TokenModel(std::vector<std::string> vocab, std::vector<std::uint8_t> lengths,
                       FromLengthsTag)
    : vocab_(std::move(vocab)), code_(std::move(lengths)) {
    TERAPHIM_ASSERT(vocab_.size() == code_.alphabet_size());
    build_lookup();
}

TokenModel TokenModel::from_lengths(std::vector<std::string> vocab,
                                    std::vector<std::uint8_t> lengths) {
    return TokenModel(std::move(vocab), std::move(lengths), FromLengthsTag{});
}

void TokenModel::build_lookup() {
    lookup_.reserve(vocab_.size());
    for (std::uint32_t s = 1; s < vocab_.size(); ++s) {
        lookup_.emplace(vocab_[s], s);
    }
}

std::optional<std::uint32_t> TokenModel::symbol_of(std::string_view token) const {
    const auto it = lookup_.find(std::string(token));
    if (it == lookup_.end()) return std::nullopt;
    return it->second;
}

const std::string& TokenModel::token_of(std::uint32_t symbol) const {
    TERAPHIM_ASSERT(symbol > 0 && symbol < vocab_.size());
    return vocab_[symbol];
}

void TokenModel::encode_token(BitWriter& w, std::string_view token) const {
    if (const auto sym = symbol_of(token)) {
        code_.encode(w, *sym);
    } else {
        code_.encode(w, 0);  // escape
        write_literal(w, token);
    }
}

std::string TokenModel::decode_token(BitReader& r) const {
    const std::uint32_t sym = code_.decode(r);
    if (sym == 0) return read_literal(r);
    return token_of(sym);
}

std::uint64_t TokenModel::model_bytes() const {
    std::uint64_t bytes = 0;
    for (const auto& token : vocab_) bytes += token.size() + 1;  // string + terminator
    bytes += vocab_.size();                                      // one code length each
    return bytes;
}

void TextModelBuilder::add_document(std::string_view text) {
    const auto tokens = alternating_tokens(text);
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        auto& freqs = (i % 2 == 0) ? word_freqs_ : nonword_freqs_;
        ++freqs[tokens[i]];
    }
    // Crude but adequate escape-frequency estimate: one novel token per
    // few documents keeps the escape code short without distorting the
    // model (MG uses a comparable heuristic).
    ++escape_estimate_;
}

TextCodec TextModelBuilder::build(std::uint64_t min_count) const {
    const auto make_model = [&](const std::unordered_map<std::string, std::uint64_t>& freqs) {
        std::vector<std::pair<std::string, std::uint64_t>> kept;
        kept.reserve(freqs.size());
        for (const auto& [token, count] : freqs) {
            if (count >= min_count) kept.emplace_back(token, count);
        }
        // Deterministic symbol numbering regardless of hash order.
        std::sort(kept.begin(), kept.end());
        std::vector<std::string> vocab;
        std::vector<std::uint64_t> counts;
        vocab.reserve(kept.size() + 1);
        counts.reserve(kept.size() + 1);
        vocab.emplace_back("");  // escape
        counts.push_back(std::max<std::uint64_t>(1, escape_estimate_ / 4 + 1));
        for (auto& [token, count] : kept) {
            vocab.push_back(std::move(token));
            counts.push_back(count);
        }
        return TokenModel(std::move(vocab), std::move(counts));
    };
    return TextCodec(make_model(word_freqs_), make_model(nonword_freqs_));
}

TextCodec::TextCodec(TokenModel words, TokenModel nonwords)
    : words_(std::move(words)), nonwords_(std::move(nonwords)) {}

std::vector<std::uint8_t> TextCodec::encode(std::string_view text) const {
    BitWriter w;
    const auto tokens = alternating_tokens(text);
    write_gamma(w, tokens.size() / 2 + 1);  // number of (word, nonword) pairs
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const auto& model = (i % 2 == 0) ? words_ : nonwords_;
        model.encode_token(w, tokens[i]);
    }
    return w.take();
}

std::string TextCodec::decode(std::span<const std::uint8_t> data) const {
    BitReader r(data);
    const std::uint64_t pairs = read_gamma(r) - 1;
    std::string out;
    for (std::uint64_t i = 0; i < pairs; ++i) {
        out += words_.decode_token(r);
        out += nonwords_.decode_token(r);
    }
    return out;
}

std::uint64_t TextCodec::encoded_bits(std::string_view text) const {
    // Encode into a scratch writer; documents are small so this costs
    // little and guarantees the figure matches encode() exactly.
    BitWriter w;
    const auto tokens = alternating_tokens(text);
    write_gamma(w, tokens.size() / 2 + 1);
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const auto& model = (i % 2 == 0) ? words_ : nonwords_;
        model.encode_token(w, tokens[i]);
    }
    return w.bit_count();
}

}  // namespace teraphim::compress
