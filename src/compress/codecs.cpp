#include "compress/codecs.h"

#include <bit>
#include <cmath>

namespace teraphim::compress {

int floor_log2(std::uint64_t n) {
    TERAPHIM_ASSERT(n >= 1);
    return 63 - std::countl_zero(n);
}

// ---- Unary -----------------------------------------------------------

void write_unary(BitWriter& w, std::uint64_t n) {
    TERAPHIM_ASSERT(n >= 1);
    std::uint64_t ones = n - 1;
    while (ones >= 32) {
        w.write_bits(0xFFFFFFFFu, 32);
        ones -= 32;
    }
    // `ones` one-bits then a terminating zero, in a single write.
    w.write_bits((1ULL << (ones + 1)) - 2, static_cast<int>(ones) + 1);
}

std::uint64_t read_unary(BitReader& r) {
    std::uint64_t n = 1;
    while (r.read_bit()) ++n;
    return n;
}

std::uint64_t unary_length(std::uint64_t n) {
    TERAPHIM_ASSERT(n >= 1);
    return n;
}

// ---- Elias gamma ------------------------------------------------------

void write_gamma(BitWriter& w, std::uint64_t n) {
    TERAPHIM_ASSERT(n >= 1);
    const int k = floor_log2(n);
    write_unary(w, static_cast<std::uint64_t>(k) + 1);
    w.write_bits(n, k);  // low k bits (implicit leading 1 dropped)
}

std::uint64_t read_gamma(BitReader& r) {
    const int k = static_cast<int>(read_unary(r)) - 1;
    return (1ULL << k) | r.read_bits(k);
}

std::uint64_t gamma_length(std::uint64_t n) {
    const int k = floor_log2(n);
    return 2 * static_cast<std::uint64_t>(k) + 1;
}

// ---- Elias delta ------------------------------------------------------

void write_delta(BitWriter& w, std::uint64_t n) {
    TERAPHIM_ASSERT(n >= 1);
    const int k = floor_log2(n);
    write_gamma(w, static_cast<std::uint64_t>(k) + 1);
    w.write_bits(n, k);
}

std::uint64_t read_delta(BitReader& r) {
    const int k = static_cast<int>(read_gamma(r)) - 1;
    return (1ULL << k) | r.read_bits(k);
}

std::uint64_t delta_length(std::uint64_t n) {
    const int k = floor_log2(n);
    return gamma_length(static_cast<std::uint64_t>(k) + 1) + static_cast<std::uint64_t>(k);
}

// ---- Golomb -----------------------------------------------------------

namespace {

// Truncated binary coding of a remainder in [0, b).
void write_truncated(BitWriter& w, std::uint64_t rem, std::uint64_t b) {
    if (b == 1) return;
    const int k = floor_log2(b);
    const std::uint64_t cutoff = (1ULL << (k + 1)) - b;  // first `cutoff` values use k bits
    if (rem < cutoff) {
        w.write_bits(rem, k);
    } else {
        w.write_bits(rem + cutoff, k + 1);
    }
}

std::uint64_t read_truncated(BitReader& r, std::uint64_t b) {
    if (b == 1) return 0;
    const int k = floor_log2(b);
    const std::uint64_t cutoff = (1ULL << (k + 1)) - b;
    std::uint64_t value = r.read_bits(k);
    if (value >= cutoff) {
        value = (value << 1) | (r.read_bit() ? 1 : 0);
        value -= cutoff;
    }
    return value;
}

std::uint64_t truncated_length(std::uint64_t rem, std::uint64_t b) {
    if (b == 1) return 0;
    const int k = floor_log2(b);
    const std::uint64_t cutoff = (1ULL << (k + 1)) - b;
    return static_cast<std::uint64_t>(rem < cutoff ? k : k + 1);
}

}  // namespace

void write_golomb(BitWriter& w, std::uint64_t n, std::uint64_t b) {
    TERAPHIM_ASSERT(n >= 1 && b >= 1);
    const std::uint64_t q = (n - 1) / b;
    const std::uint64_t rem = (n - 1) % b;
    write_unary(w, q + 1);
    write_truncated(w, rem, b);
}

std::uint64_t read_golomb(BitReader& r, std::uint64_t b) {
    TERAPHIM_ASSERT(b >= 1);
    const std::uint64_t q = read_unary(r) - 1;
    const std::uint64_t rem = read_truncated(r, b);
    return q * b + rem + 1;
}

std::uint64_t golomb_length(std::uint64_t n, std::uint64_t b) {
    const std::uint64_t q = (n - 1) / b;
    const std::uint64_t rem = (n - 1) % b;
    return (q + 1) + truncated_length(rem, b);
}

std::uint64_t golomb_parameter(std::uint64_t universe, std::uint64_t count) {
    if (count == 0) return 1;
    const double b = 0.69 * static_cast<double>(universe) / static_cast<double>(count);
    const auto rounded = static_cast<std::uint64_t>(std::ceil(b));
    return rounded >= 1 ? rounded : 1;
}

// ---- Rice -------------------------------------------------------------

void write_rice(BitWriter& w, std::uint64_t n, int k) {
    TERAPHIM_ASSERT(n >= 1 && k >= 0 && k < 63);
    const std::uint64_t m = n - 1;
    write_unary(w, (m >> k) + 1);
    w.write_bits(m, k);
}

std::uint64_t read_rice(BitReader& r, int k) {
    const std::uint64_t q = read_unary(r) - 1;
    return ((q << k) | r.read_bits(k)) + 1;
}

std::uint64_t rice_length(std::uint64_t n, int k) {
    const std::uint64_t m = n - 1;
    return (m >> k) + 1 + static_cast<std::uint64_t>(k);
}

// ---- vbyte ------------------------------------------------------------

void write_vbyte(BitWriter& w, std::uint64_t n) {
    while (n >= 0x80) {
        w.write_bits(0x80 | (n & 0x7F), 8);
        n >>= 7;
    }
    w.write_bits(n, 8);
}

std::uint64_t read_vbyte(BitReader& r) {
    std::uint64_t value = 0;
    int shift = 0;
    for (;;) {
        const std::uint64_t byte = r.read_bits(8);
        value |= (byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) return value;
        shift += 7;
        if (shift > 63) throw DataError("vbyte: value overflows 64 bits");
    }
}

std::uint64_t vbyte_length(std::uint64_t n) {
    std::uint64_t bytes = 1;
    while (n >= 0x80) {
        n >>= 7;
        ++bytes;
    }
    return bytes * 8;
}

}  // namespace teraphim::compress
