#include "compress/huffman.h"

#include <algorithm>
#include <queue>

namespace teraphim::compress {

namespace {

struct Node {
    std::uint64_t weight;
    std::int32_t left;   // -1 for leaf
    std::int32_t right;
    std::uint32_t symbol;
};

// Depth-first code-length assignment over the built tree.
void assign_depths(const std::vector<Node>& nodes, std::int32_t at, int depth,
                   std::vector<std::uint8_t>& lengths) {
    const Node& n = nodes[static_cast<std::size_t>(at)];
    if (n.left < 0) {
        lengths[n.symbol] = static_cast<std::uint8_t>(depth == 0 ? 1 : depth);
        return;
    }
    assign_depths(nodes, n.left, depth + 1, lengths);
    assign_depths(nodes, n.right, depth + 1, lengths);
}

std::vector<std::uint8_t> build_lengths_once(std::span<const std::uint64_t> freqs) {
    std::vector<std::uint8_t> lengths(freqs.size(), 0);
    std::vector<Node> nodes;
    nodes.reserve(freqs.size() * 2);

    using Entry = std::pair<std::uint64_t, std::int32_t>;  // (weight, node index)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    for (std::uint32_t s = 0; s < freqs.size(); ++s) {
        if (freqs[s] == 0) continue;
        nodes.push_back({freqs[s], -1, -1, s});
        heap.emplace(freqs[s], static_cast<std::int32_t>(nodes.size() - 1));
    }
    if (heap.empty()) return lengths;
    while (heap.size() > 1) {
        const auto [wa, a] = heap.top();
        heap.pop();
        const auto [wb, b] = heap.top();
        heap.pop();
        nodes.push_back({wa + wb, a, b, 0});
        heap.emplace(wa + wb, static_cast<std::int32_t>(nodes.size() - 1));
    }
    assign_depths(nodes, heap.top().second, 0, lengths);
    return lengths;
}

}  // namespace

std::vector<std::uint8_t> huffman_code_lengths(std::span<const std::uint64_t> freqs,
                                               int max_length) {
    TERAPHIM_ASSERT(max_length >= 1 && max_length <= 57);
    std::vector<std::uint64_t> working(freqs.begin(), freqs.end());
    for (;;) {
        auto lengths = build_lengths_once(working);
        const int max_seen =
            lengths.empty() ? 0 : *std::max_element(lengths.begin(), lengths.end());
        if (max_seen <= max_length) return lengths;
        // Flatten the distribution and retry: halving (with +1 floor for
        // live symbols) strictly reduces skew, so termination is assured.
        for (auto& f : working) {
            if (f > 0) f = f / 2 + 1;
        }
    }
}

HuffmanCode::HuffmanCode(std::vector<std::uint8_t> lengths) : lengths_(std::move(lengths)) {
    max_len_ = lengths_.empty() ? 0 : *std::max_element(lengths_.begin(), lengths_.end());
    codes_.assign(lengths_.size(), 0);
    count_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
    first_code_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
    first_index_.assign(static_cast<std::size_t>(max_len_) + 1, 0);

    for (std::uint8_t len : lengths_) {
        if (len > 0) ++count_[len];
    }
    // Kraft check: sum of 2^-len over coded symbols must not exceed 1.
    std::uint64_t kraft = 0;  // in units of 2^-max_len_
    for (int len = 1; len <= max_len_; ++len) {
        kraft += static_cast<std::uint64_t>(count_[static_cast<std::size_t>(len)])
                 << (max_len_ - len);
    }
    if (max_len_ > 0 && kraft > (1ULL << max_len_)) {
        throw DataError("HuffmanCode: code lengths violate the Kraft inequality");
    }

    // Canonical first codes per length.
    std::uint32_t code = 0;
    std::uint32_t index = 0;
    for (int len = 1; len <= max_len_; ++len) {
        code = (code + (len > 1 ? count_[static_cast<std::size_t>(len) - 1] : 0)) << 1;
        first_code_[static_cast<std::size_t>(len)] = code;
        first_index_[static_cast<std::size_t>(len)] = index;
        index += count_[static_cast<std::size_t>(len)];
    }

    // Symbols sorted by (length, symbol) — the canonical order.
    sorted_symbols_.reserve(index);
    for (int len = 1; len <= max_len_; ++len) {
        for (std::uint32_t s = 0; s < lengths_.size(); ++s) {
            if (lengths_[s] == len) sorted_symbols_.push_back(s);
        }
    }

    // Per-symbol codes for the encoder.
    std::vector<std::uint32_t> next_code(first_code_);
    for (std::uint32_t s : sorted_symbols_) {
        codes_[s] = next_code[lengths_[s]]++;
    }
}

HuffmanCode HuffmanCode::from_frequencies(std::span<const std::uint64_t> freqs,
                                          int max_length) {
    return HuffmanCode(huffman_code_lengths(freqs, max_length));
}

void HuffmanCode::encode(BitWriter& w, std::uint32_t symbol) const {
    TERAPHIM_ASSERT(symbol < lengths_.size());
    const int len = lengths_[symbol];
    TERAPHIM_ASSERT_MSG(len > 0, "encoding a symbol with no code");
    w.write_bits(codes_[symbol], len);
}

std::uint32_t HuffmanCode::decode(BitReader& r) const {
    if (max_len_ == 0) throw DataError("HuffmanCode: decode with empty code book");
    std::uint32_t code = 0;
    for (int len = 1; len <= max_len_; ++len) {
        code = (code << 1) | (r.read_bit() ? 1u : 0u);
        const std::uint32_t n = count_[static_cast<std::size_t>(len)];
        if (n != 0) {
            const std::uint32_t first = first_code_[static_cast<std::size_t>(len)];
            if (code >= first && code < first + n) {
                return sorted_symbols_[first_index_[static_cast<std::size_t>(len)] +
                                       (code - first)];
            }
        }
    }
    throw DataError("HuffmanCode: invalid bit sequence");
}

double HuffmanCode::mean_length(std::span<const std::uint64_t> freqs) const {
    TERAPHIM_ASSERT(freqs.size() == lengths_.size());
    std::uint64_t total = 0;
    double bits = 0.0;
    for (std::size_t s = 0; s < freqs.size(); ++s) {
        total += freqs[s];
        bits += static_cast<double>(freqs[s]) * lengths_[s];
    }
    return total == 0 ? 0.0 : bits / static_cast<double>(total);
}

}  // namespace teraphim::compress
