// Canonical Huffman coding.
//
// Used by the document-text codec (word-based model, as in MG) and
// available to any other component that needs entropy coding over a
// known symbol alphabet. Codes are canonical so the decoder needs only
// the code-length array, and decoding proceeds length-by-length with the
// first-code table — exactly the scheme described in Managing Gigabytes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/bitio.h"

namespace teraphim::compress {

/// Computes canonical Huffman code lengths for the given symbol
/// frequencies. Zero-frequency symbols get length 0 (no code). If the
/// implied tree would exceed `max_length` bits, frequencies are rescaled
/// until it fits (MG uses the same trick to bound decode tables).
std::vector<std::uint8_t> huffman_code_lengths(std::span<const std::uint64_t> freqs,
                                               int max_length = 32);

/// Encoder+decoder for one canonical code book.
class HuffmanCode {
public:
    /// Builds the canonical code from per-symbol lengths (0 = unused).
    explicit HuffmanCode(std::vector<std::uint8_t> lengths);

    /// Convenience: build straight from frequencies.
    static HuffmanCode from_frequencies(std::span<const std::uint64_t> freqs,
                                        int max_length = 32);

    void encode(BitWriter& w, std::uint32_t symbol) const;
    std::uint32_t decode(BitReader& r) const;

    /// Code length of a symbol in bits (0 if the symbol has no code).
    int length(std::uint32_t symbol) const { return lengths_[symbol]; }

    std::size_t alphabet_size() const { return lengths_.size(); }
    const std::vector<std::uint8_t>& lengths() const { return lengths_; }

    /// Expected bits per symbol under the given frequency distribution.
    double mean_length(std::span<const std::uint64_t> freqs) const;

private:
    std::vector<std::uint8_t> lengths_;
    std::vector<std::uint32_t> codes_;       // canonical code per symbol
    int max_len_ = 0;
    // Decoder tables, indexed by code length 1..max_len_:
    std::vector<std::uint32_t> first_code_;  // smallest code of this length
    std::vector<std::uint32_t> first_index_; // index into sorted_symbols_
    std::vector<std::uint32_t> count_;       // number of codes of this length
    std::vector<std::uint32_t> sorted_symbols_;  // symbols ordered by (length, symbol)
};

}  // namespace teraphim::compress
