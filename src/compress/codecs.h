// Integer codes used by the inverted file.
//
// MG stores a postings list for term t as a sequence of d-gaps coded with
// a Golomb code parameterised per list, and in-document frequencies f_dt
// coded with Elias gamma. We provide the whole family the MG literature
// discusses — unary, Elias gamma/delta, Golomb, Rice, and byte-aligned
// vbyte — all over the shared BitWriter/BitReader, plus helpers to pick
// the Golomb parameter and to measure coded sizes.
//
// Conventions: unary/gamma/delta code integers >= 1; Golomb/Rice code
// integers >= 1 (d-gaps are always >= 1); vbyte codes integers >= 0.
#pragma once

#include <cstdint>

#include "compress/bitio.h"

namespace teraphim::compress {

// ---- Unary -----------------------------------------------------------

/// Writes n >= 1 as (n-1) one-bits followed by a zero bit.
void write_unary(BitWriter& w, std::uint64_t n);
std::uint64_t read_unary(BitReader& r);
/// Bits needed to code n in unary.
std::uint64_t unary_length(std::uint64_t n);

// ---- Elias gamma ------------------------------------------------------

/// Writes n >= 1: unary(1 + floor(log2 n)) then the low floor(log2 n) bits.
void write_gamma(BitWriter& w, std::uint64_t n);
std::uint64_t read_gamma(BitReader& r);
std::uint64_t gamma_length(std::uint64_t n);

// ---- Elias delta ------------------------------------------------------

/// Writes n >= 1: gamma(1 + floor(log2 n)) then the low floor(log2 n) bits.
void write_delta(BitWriter& w, std::uint64_t n);
std::uint64_t read_delta(BitReader& r);
std::uint64_t delta_length(std::uint64_t n);

// ---- Golomb -----------------------------------------------------------

/// Writes n >= 1 with Golomb parameter b >= 1: quotient q = (n-1)/b in
/// unary (q+1), remainder via truncated binary.
void write_golomb(BitWriter& w, std::uint64_t n, std::uint64_t b);
std::uint64_t read_golomb(BitReader& r, std::uint64_t b);
std::uint64_t golomb_length(std::uint64_t n, std::uint64_t b);

/// Witten/Moffat/Bell recommendation: b = ceil(0.69 * N / f) for a list of
/// f document numbers drawn from a universe of N documents. Returns >= 1.
std::uint64_t golomb_parameter(std::uint64_t universe, std::uint64_t count);

// ---- Rice (Golomb with b = 2^k) ----------------------------------------

void write_rice(BitWriter& w, std::uint64_t n, int k);
std::uint64_t read_rice(BitReader& r, int k);
std::uint64_t rice_length(std::uint64_t n, int k);

// ---- Variable-byte (byte aligned, used for vocabulary file fields) ------

void write_vbyte(BitWriter& w, std::uint64_t n);
std::uint64_t read_vbyte(BitReader& r);
std::uint64_t vbyte_length(std::uint64_t n);

/// floor(log2 n) for n >= 1.
int floor_log2(std::uint64_t n);

}  // namespace teraphim::compress
