#include "compress/bitio.h"

namespace teraphim::compress {

void BitWriter::write_bits(std::uint64_t value, int count) {
    TERAPHIM_ASSERT(count >= 0 && count <= 64);
    if (count == 0) return;
    if (count < 64) value &= (1ULL << count) - 1;
    bit_count_ += static_cast<std::uint64_t>(count);

    while (count > 0) {
        const int room = 8 - pending_;
        const int take = count < room ? count : room;
        const std::uint64_t chunk = value >> (count - take);
        accum_ = (accum_ << take) | (chunk & ((take == 64) ? ~0ULL : ((1ULL << take) - 1)));
        pending_ += take;
        count -= take;
        if (pending_ == 8) {
            buffer_.push_back(static_cast<std::uint8_t>(accum_ & 0xFF));
            accum_ = 0;
            pending_ = 0;
        }
    }
}

void BitWriter::align_to_byte() {
    if (pending_ != 0) write_bits(0, 8 - pending_);
}

std::vector<std::uint8_t> BitWriter::take() {
    align_to_byte();
    std::vector<std::uint8_t> out;
    out.swap(buffer_);
    accum_ = 0;
    pending_ = 0;
    bit_count_ = 0;
    return out;
}

std::uint64_t BitReader::read_bits(int count) {
    TERAPHIM_ASSERT(count >= 0 && count <= 64);
    if (count == 0) return 0;
    if (static_cast<std::uint64_t>(count) > bits_remaining()) {
        throw DataError("BitReader: read past end of stream");
    }
    std::uint64_t result = 0;
    int remaining = count;
    while (remaining > 0) {
        const std::size_t byte_index = static_cast<std::size_t>(bit_position_ >> 3);
        const int bit_in_byte = static_cast<int>(bit_position_ & 7);
        const int avail = 8 - bit_in_byte;
        const int take = remaining < avail ? remaining : avail;
        const std::uint8_t byte = data_[byte_index];
        const std::uint8_t chunk =
            static_cast<std::uint8_t>((byte >> (avail - take)) & ((1u << take) - 1));
        result = (result << take) | chunk;
        bit_position_ += static_cast<std::uint64_t>(take);
        remaining -= take;
    }
    return result;
}

void BitReader::align_to_byte() {
    bit_position_ = (bit_position_ + 7) & ~std::uint64_t{7};
    TERAPHIM_ASSERT(bit_position_ <= static_cast<std::uint64_t>(data_.size()) * 8);
}

void BitReader::seek_bit(std::uint64_t bit_offset) {
    if (bit_offset > static_cast<std::uint64_t>(data_.size()) * 8) {
        throw DataError("BitReader: seek past end of stream");
    }
    bit_position_ = bit_offset;
}

}  // namespace teraphim::compress
