// Word-based document text compression, after the MG scheme.
//
// Text is parsed into a strictly alternating sequence of "words" (runs of
// alphanumerics) and "non-words" (runs of everything else). Two canonical
// Huffman models — one per token class — are trained on a first pass over
// the collection; a reserved escape symbol covers tokens never seen at
// training time, which are then spelled out literally. The scheme is
// lossless: decode(encode(text)) == text for any byte string.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "compress/huffman.h"

namespace teraphim::compress {

/// One token class (words or non-words): vocabulary plus Huffman code.
/// Symbol 0 is always the escape symbol.
class TokenModel {
public:
    TokenModel(std::vector<std::string> vocab, std::vector<std::uint64_t> freqs);

    /// Reconstructs a model from its persisted form: the vocabulary and
    /// the canonical code lengths (store/persist.h). The code book is
    /// identical to the one originally built from frequencies, because
    /// canonical codes are a pure function of the lengths.
    static TokenModel from_lengths(std::vector<std::string> vocab,
                                   std::vector<std::uint8_t> lengths);

    /// Symbol id for a token, if it is in the model's vocabulary.
    std::optional<std::uint32_t> symbol_of(std::string_view token) const;

    const std::string& token_of(std::uint32_t symbol) const;
    std::size_t vocab_size() const { return vocab_.size(); }

    void encode_token(BitWriter& w, std::string_view token) const;
    std::string decode_token(BitReader& r) const;

    /// Serialized size of the model itself (vocabulary + code lengths),
    /// in bytes; contributes to the index-size accounting.
    std::uint64_t model_bytes() const;

    /// Persistence accessors (store/persist.h).
    const std::vector<std::string>& vocab() const { return vocab_; }
    const std::vector<std::uint8_t>& code_lengths() const { return code_.lengths(); }

private:
    struct FromLengthsTag {};
    TokenModel(std::vector<std::string> vocab, std::vector<std::uint8_t> lengths,
               FromLengthsTag);
    void build_lookup();

    std::vector<std::string> vocab_;  // vocab_[0] is the escape pseudo-token ""
    std::unordered_map<std::string, std::uint32_t> lookup_;
    HuffmanCode code_;
};

/// Accumulates token statistics over a training pass.
class TextModelBuilder {
public:
    void add_document(std::string_view text);

    /// Freezes the statistics into an encode/decode-capable codec.
    /// Tokens seen fewer than `min_count` times are dropped from the
    /// vocabulary (they will be escape-coded).
    class TextCodec build(std::uint64_t min_count = 1) const;

private:
    std::unordered_map<std::string, std::uint64_t> word_freqs_;
    std::unordered_map<std::string, std::uint64_t> nonword_freqs_;
    std::uint64_t escape_estimate_ = 0;
};

/// Splits text into alternating word / non-word runs. The result always
/// has even length: (word, nonword) pairs, with empty strings where a run
/// is absent (e.g. text starting with punctuation).
std::vector<std::string> alternating_tokens(std::string_view text);

/// The document compressor.
class TextCodec {
public:
    TextCodec(TokenModel words, TokenModel nonwords);

    std::vector<std::uint8_t> encode(std::string_view text) const;
    std::string decode(std::span<const std::uint8_t> data) const;

    /// Coded size in bits without materialising the output.
    std::uint64_t encoded_bits(std::string_view text) const;

    std::uint64_t model_bytes() const {
        return words_.model_bytes() + nonwords_.model_bytes();
    }

    const TokenModel& word_model() const { return words_; }
    const TokenModel& nonword_model() const { return nonwords_; }

private:
    TokenModel words_;
    TokenModel nonwords_;
};

}  // namespace teraphim::compress
