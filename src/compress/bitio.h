// Bit-granularity I/O over in-memory buffers.
//
// The inverted file and the compressed document store are bit streams in
// the MG tradition: postings are Golomb/Elias coded, document text is
// Huffman coded. BitWriter appends most-significant-bit first so that
// canonical Huffman decoding and unary runs read naturally.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.h"

namespace teraphim::compress {

/// Accumulates bits MSB-first into a byte buffer.
class BitWriter {
public:
    BitWriter() = default;

    /// Appends the low `count` bits of `value`, most significant first.
    /// count must be in [0, 64].
    void write_bits(std::uint64_t value, int count);

    /// Appends a single bit.
    void write_bit(bool bit) { write_bits(bit ? 1u : 0u, 1); }

    /// Pads with zero bits to the next byte boundary.
    void align_to_byte();

    /// Number of bits written so far.
    std::uint64_t bit_count() const { return bit_count_; }

    /// Finishes the stream (pads to a byte) and returns the buffer.
    std::vector<std::uint8_t> take();

    /// Read-only view of the (byte-aligned portion of the) buffer.
    std::span<const std::uint8_t> bytes() const { return buffer_; }

private:
    std::vector<std::uint8_t> buffer_;
    std::uint64_t accum_ = 0;  // pending bits, left-aligned within `pending_`
    int pending_ = 0;          // number of pending bits in accum_ (always < 8)
    std::uint64_t bit_count_ = 0;
};

/// Reads bits MSB-first from a byte buffer. The reader does not own the
/// bytes; the caller keeps them alive.
class BitReader {
public:
    explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

    /// Reads `count` bits (0..64) and returns them right-aligned.
    /// Throws DataError on exhaustion.
    std::uint64_t read_bits(int count);

    /// Reads a single bit.
    bool read_bit() { return read_bits(1) != 0; }

    /// Skips forward to the next byte boundary.
    void align_to_byte();

    /// Absolute bit position from the start of the buffer.
    std::uint64_t bit_position() const { return bit_position_; }

    /// Repositions the reader at an absolute bit offset.
    void seek_bit(std::uint64_t bit_offset);

    /// Bits remaining in the buffer.
    std::uint64_t bits_remaining() const {
        return static_cast<std::uint64_t>(data_.size()) * 8 - bit_position_;
    }

private:
    std::span<const std::uint8_t> data_;
    std::uint64_t bit_position_ = 0;
};

}  // namespace teraphim::compress
