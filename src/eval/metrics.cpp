#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace teraphim::eval {

namespace {

/// Precision value at each rank where a relevant document appears.
/// Element j is the precision after the (j+1)-th relevant doc is found.
std::vector<double> precision_at_relevant_ranks(std::span<const std::string> ranked,
                                                const RelevantSet& relevant) {
    std::vector<double> out;
    std::size_t found = 0;
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        if (relevant.contains(ranked[i])) {
            ++found;
            out.push_back(static_cast<double>(found) / static_cast<double>(i + 1));
        }
    }
    return out;
}

}  // namespace

std::vector<double> recall_precision_curve(std::span<const std::string> ranked,
                                           const RelevantSet& relevant) {
    std::vector<double> curve(11, 0.0);
    if (relevant.empty()) return curve;
    const auto precisions = precision_at_relevant_ranks(ranked, relevant);
    const double total_relevant = static_cast<double>(relevant.size());

    // Interpolated precision at recall r = max precision at any recall >= r.
    // Walk the relevant hits from last to first, carrying the running max.
    std::vector<double> interp(precisions.size());
    double running = 0.0;
    for (std::size_t j = precisions.size(); j-- > 0;) {
        running = std::max(running, precisions[j]);
        interp[j] = running;
    }

    for (int level = 0; level <= 10; ++level) {
        const double target_recall = static_cast<double>(level) / 10.0;
        // First relevant hit whose recall meets the level.
        const double needed = target_recall * total_relevant;
        const auto first_index = static_cast<std::size_t>(std::max(0.0, std::ceil(needed) - 1.0));
        if (target_recall == 0.0) {
            curve[0] = interp.empty() ? 0.0 : interp[0];
        } else if (first_index < interp.size() &&
                   static_cast<double>(first_index + 1) >= needed) {
            curve[static_cast<std::size_t>(level)] = interp[first_index];
        } else {
            curve[static_cast<std::size_t>(level)] = 0.0;
        }
    }
    return curve;
}

double eleven_point_average(std::span<const std::string> ranked, const RelevantSet& relevant) {
    if (relevant.empty()) return 0.0;
    const auto curve = recall_precision_curve(ranked, relevant);
    double sum = 0.0;
    for (double p : curve) sum += p;
    return sum / 11.0;
}

std::size_t relevant_in_top(std::span<const std::string> ranked, const RelevantSet& relevant,
                            std::size_t k) {
    std::size_t found = 0;
    const std::size_t limit = std::min(k, ranked.size());
    for (std::size_t i = 0; i < limit; ++i) {
        if (relevant.contains(ranked[i])) ++found;
    }
    return found;
}

double precision_at(std::span<const std::string> ranked, const RelevantSet& relevant,
                    std::size_t k) {
    if (k == 0) return 0.0;
    return static_cast<double>(relevant_in_top(ranked, relevant, k)) /
           static_cast<double>(k);
}

double recall_at(std::span<const std::string> ranked, const RelevantSet& relevant,
                 std::size_t k) {
    if (relevant.empty()) return 0.0;
    return static_cast<double>(relevant_in_top(ranked, relevant, k)) /
           static_cast<double>(relevant.size());
}

double average_precision(std::span<const std::string> ranked, const RelevantSet& relevant) {
    if (relevant.empty()) return 0.0;
    const auto precisions = precision_at_relevant_ranks(ranked, relevant);
    double sum = 0.0;
    for (double p : precisions) sum += p;
    return sum / static_cast<double>(relevant.size());
}

}  // namespace teraphim::eval
