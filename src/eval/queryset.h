// Test queries and relevance judgments.
//
// Mirrors the TREC apparatus the paper uses: a corpus of text, a set of
// test queries (the paper's "51-200" long set and "202-250" short set),
// and relevance judgments mapping each query to the documents a human
// assessor deemed relevant. Here the judgments come from the synthetic
// corpus generator, which knows ground truth by construction.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "eval/metrics.h"

namespace teraphim::eval {

struct TestQuery {
    int id = 0;          ///< TREC-style topic number
    std::string text;    ///< raw query text (pre-pipeline)
};

struct QuerySet {
    std::string name;    ///< e.g. "Long queries (51-200)"
    std::vector<TestQuery> queries;

    std::size_t size() const { return queries.size(); }
};

/// query id -> relevant external document ids.
class Judgments {
public:
    void add(int query_id, std::string doc_id);

    const RelevantSet& relevant_for(int query_id) const;

    /// Number of queries with at least one relevant document.
    std::size_t judged_queries() const { return by_query_.size(); }

    std::size_t total_relevant() const;

private:
    std::map<int, RelevantSet> by_query_;
    RelevantSet empty_;
};

/// Per-query evaluation of one system run.
struct QueryOutcome {
    int query_id = 0;
    double eleven_pt = 0.0;
    std::size_t relevant_in_top20 = 0;
    std::size_t retrieved = 0;
};

/// Aggregate over a query set: the two columns of the paper's Table 1.
struct EffectivenessSummary {
    double mean_eleven_pt = 0.0;        ///< reported as a percentage in the paper
    double mean_relevant_in_top20 = 0.0;
    std::vector<QueryOutcome> per_query;
};

/// Scores one system: for each query, `run(query)` must return the
/// ranked external ids (best first, up to the evaluation depth).
template <typename RunFn>
EffectivenessSummary evaluate_run(const QuerySet& queries, const Judgments& judgments,
                                  RunFn&& run, std::size_t top = 20) {
    EffectivenessSummary summary;
    double sum_ap = 0.0;
    double sum_top = 0.0;
    for (const TestQuery& q : queries.queries) {
        const std::vector<std::string> ranked = run(q);
        const RelevantSet& rel = judgments.relevant_for(q.id);
        QueryOutcome outcome;
        outcome.query_id = q.id;
        outcome.eleven_pt = eleven_point_average(ranked, rel);
        outcome.relevant_in_top20 = relevant_in_top(ranked, rel, top);
        outcome.retrieved = ranked.size();
        sum_ap += outcome.eleven_pt;
        sum_top += static_cast<double>(outcome.relevant_in_top20);
        summary.per_query.push_back(std::move(outcome));
    }
    const auto n = static_cast<double>(queries.queries.size());
    if (n > 0) {
        summary.mean_eleven_pt = sum_ap / n;
        summary.mean_relevant_in_top20 = sum_top / n;
    }
    return summary;
}

}  // namespace teraphim::eval
