#include "eval/queryset.h"

namespace teraphim::eval {

void Judgments::add(int query_id, std::string doc_id) {
    by_query_[query_id].insert(std::move(doc_id));
}

const RelevantSet& Judgments::relevant_for(int query_id) const {
    const auto it = by_query_.find(query_id);
    return it == by_query_.end() ? empty_ : it->second;
}

std::size_t Judgments::total_relevant() const {
    std::size_t total = 0;
    for (const auto& [id, set] : by_query_) total += set.size();
    return total;
}

}  // namespace teraphim::eval
