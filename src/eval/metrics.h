// Retrieval-effectiveness metrics.
//
// The paper reports two figures (Section 2): the TREC "11-pt average" —
// interpolated precision averaged over the 11 recall levels 0.0 .. 1.0,
// computed over a ranking of 1000 documents — and the number of relevant
// documents among the top 20 returned. Both are implemented here exactly
// as trec_eval computes them, so the Table 1 bench prints comparable
// numbers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

namespace teraphim::eval {

/// The set of documents judged relevant for one query, by external id.
using RelevantSet = std::unordered_set<std::string>;

/// Interpolated precision at the 11 standard recall points, averaged.
/// `ranked` is the system ranking, best first, already truncated to the
/// evaluation depth (the paper uses 1000). Returns 0 when `relevant` is
/// empty.
double eleven_point_average(std::span<const std::string> ranked, const RelevantSet& relevant);

/// Number of relevant documents among the first `k` of `ranked`.
std::size_t relevant_in_top(std::span<const std::string> ranked, const RelevantSet& relevant,
                            std::size_t k);

/// Precision after `k` documents retrieved.
double precision_at(std::span<const std::string> ranked, const RelevantSet& relevant,
                    std::size_t k);

/// Recall after `k` documents retrieved.
double recall_at(std::span<const std::string> ranked, const RelevantSet& relevant,
                 std::size_t k);

/// Non-interpolated average precision (MAP component) over the ranking.
double average_precision(std::span<const std::string> ranked, const RelevantSet& relevant);

/// Full interpolated recall-precision curve at the 11 standard points;
/// element i is the interpolated precision at recall i/10.
std::vector<double> recall_precision_curve(std::span<const std::string> ranked,
                                           const RelevantSet& relevant);

}  // namespace teraphim::eval
