// Observability primitives for the federation: a thread-safe registry
// of named counters, gauges, and fixed-bucket latency histograms, plus
// a lightweight Span stopwatch. Instrumented code resolves metric
// handles once (at construction) and records through raw pointers that
// are null when no registry is installed, so the hot path costs a
// branch and nothing else — no allocation, no locking, no lookup.
//
// Naming scheme: teraphim_<layer>_<name>, e.g.
// teraphim_receptionist_stage_latency_ms, teraphim_mux_frames_sent_total.
// Dumps use the Prometheus text exposition format (render_prometheus).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/timer.h"

namespace teraphim::obs {

/// Monotonically increasing event count.
class Counter {
public:
    void inc(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
    std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (in-flight depth, breaker state, ...).
class Gauge {
public:
    void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t delta) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
    std::int64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper
/// bounds, with an implicit +Inf overflow bucket at the end. observe()
/// is lock-free (one binary search over ~a dozen bounds plus three
/// relaxed atomic adds).
class Histogram {
public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double v) noexcept;

    std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
    double sum() const noexcept;

    /// Number of upper bounds (buckets minus the +Inf overflow).
    const std::vector<double>& bounds() const { return bounds_; }
    /// Non-cumulative count of bucket i, i in [0, bounds().size()];
    /// the last index is the +Inf overflow bucket.
    std::uint64_t bucket_count(std::size_t i) const;

    /// Estimated quantile (q in [0,1]) by linear interpolation within
    /// the bucket containing the target rank; values in the overflow
    /// bucket report the largest finite bound. 0 when empty.
    double quantile(double q) const;

    /// The default bounds used for latency histograms, in milliseconds:
    /// 0.05 .. 10000 in roughly 1-2.5-5 steps.
    static std::span<const double> default_latency_bounds_ms();

private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/// One collected time-series point, flattened so it can cross the wire
/// (the librarian Stats RPC ships vectors of these).
struct MetricSample {
    enum class Kind : std::uint8_t { Counter = 0, Gauge = 1, Histogram = 2 };

    Kind kind = Kind::Counter;
    std::string name;    ///< family name, e.g. teraphim_mux_frames_sent_total
    std::string labels;  ///< rendered label pairs without braces, e.g. `stage="parse"`; may be empty
    double value = 0.0;  ///< counter / gauge value (unused for histograms)

    // Histogram payload (empty for counters/gauges).
    std::vector<double> bounds;                ///< ascending finite upper bounds
    std::vector<std::uint64_t> bucket_counts;  ///< non-cumulative, bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
};

/// Ordered label pairs; rendered in the order given.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Thread-safe home of every metric. Registration (counter()/gauge()/
/// histogram()) takes a mutex and interns the series; the returned
/// reference is stable for the registry's lifetime, so callers resolve
/// handles once and record lock-free afterwards.
class MetricsRegistry {
public:
    MetricsRegistry();   // out of line: Series is incomplete here
    ~MetricsRegistry();
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    Counter& counter(std::string_view name, const Labels& labels = {});
    Gauge& gauge(std::string_view name, const Labels& labels = {});
    /// Empty `bounds` selects Histogram::default_latency_bounds_ms().
    Histogram& histogram(std::string_view name, const Labels& labels = {},
                         std::span<const double> bounds = {});

    /// Snapshot of every series, sorted by (name, labels).
    std::vector<MetricSample> collect() const;

    /// collect() rendered as Prometheus text.
    std::string render() const;

private:
    struct Series;
    Series& intern(std::string_view name, const Labels& labels, MetricSample::Kind kind,
                   std::span<const double> bounds);

    mutable std::mutex mu_;
    // Keyed by (name, rendered labels) so all series of a family are
    // contiguous in collect() output.
    std::vector<std::unique_ptr<Series>> series_;
};

/// Renders samples in the Prometheus text exposition format: one
/// `# TYPE` line per family, cumulative `_bucket{le=...}` plus `_sum`/
/// `_count` for histograms. Samples are sorted internally, so merged
/// snapshots from several registries render correctly.
std::string render_prometheus(std::span<const MetricSample> samples);

/// Renders label pairs as they appear inside braces: `k1="v1",k2="v2"`.
std::string render_labels(const Labels& labels);

/// Process-global registry used by instrumentation sites that have no
/// natural owner (the receptionist, client-side transports, benches).
/// Null by default: all instrumentation resolves to null handles and
/// the hot path reduces to untaken branches. Not owned; the caller
/// keeps the registry alive for as long as it is installed.
MetricsRegistry* global() noexcept;
void set_global(MetricsRegistry* registry) noexcept;

/// RAII stopwatch: on stop() (or destruction) adds the elapsed
/// milliseconds to *out (when non-null) and observes them in *histogram
/// (when non-null). Allocation-free.
class Span {
public:
    explicit Span(double* out, Histogram* histogram = nullptr)
        : out_(out), histogram_(histogram) {}
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { stop(); }

    /// Idempotent; returns the elapsed milliseconds of the first stop.
    double stop();

private:
    util::Timer timer_;
    double* out_;
    Histogram* histogram_;
    bool stopped_ = false;
    double elapsed_ms_ = 0.0;
};

}  // namespace teraphim::obs
