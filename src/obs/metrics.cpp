#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <tuple>

#include "util/error.h"

namespace teraphim::obs {

namespace {

std::atomic<MetricsRegistry*> g_registry{nullptr};

/// Prometheus label values escape backslash, double quote and newline.
void append_escaped(std::string& out, std::string_view value) {
    for (char c : value) {
        switch (c) {
            case '\\': out += "\\\\"; break;
            case '"': out += "\\\""; break;
            case '\n': out += "\\n"; break;
            default: out += c;
        }
    }
}

/// Prometheus accepts any float syntax; integers render without an
/// exponent or trailing zeros so counters read naturally.
void append_number(std::string& out, double v) {
    char buf[64];
    if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof buf, "%.6g", v);
    }
    out += buf;
}

void append_series(std::string& out, const std::string& name, const std::string& labels,
                   std::string_view extra_label = {}) {
    out += name;
    if (!labels.empty() || !extra_label.empty()) {
        out += '{';
        out += labels;
        if (!labels.empty() && !extra_label.empty()) out += ',';
        out += extra_label;
        out += '}';
    }
}

}  // namespace

// ---- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
    TERAPHIM_ASSERT_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                        "histogram bounds must be ascending");
}

void Histogram::observe(double v) noexcept {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // fetch_add on atomic<double> is C++20 but not lock-free everywhere;
    // a CAS loop keeps the class dependency-light.
    double expected = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(expected, expected + v, std::memory_order_relaxed)) {
    }
}

double Histogram::sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

std::uint64_t Histogram::bucket_count(std::size_t i) const {
    TERAPHIM_ASSERT_MSG(i < buckets_.size(), "histogram bucket index out of range");
    return buckets_[i].load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
    const std::uint64_t n = count();
    if (n == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(n);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const std::uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
        if (in_bucket == 0) continue;
        const std::uint64_t next = cumulative + in_bucket;
        if (static_cast<double>(next) >= target) {
            if (i >= bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
            const double lower = i == 0 ? 0.0 : bounds_[i - 1];
            const double fraction =
                (target - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
            return lower + (bounds_[i] - lower) * std::clamp(fraction, 0.0, 1.0);
        }
        cumulative = next;
    }
    return bounds_.empty() ? 0.0 : bounds_.back();
}

std::span<const double> Histogram::default_latency_bounds_ms() {
    static constexpr std::array<double, 14> kBounds = {0.05, 0.1, 0.25, 0.5,  1.0,  2.5,  5.0,
                                                       10.0, 25.0, 50.0, 100.0, 250.0, 1000.0,
                                                       10000.0};
    return kBounds;
}

// ---- MetricsRegistry -------------------------------------------------------

struct MetricsRegistry::Series {
    MetricSample::Kind kind;
    std::string name;
    std::string labels;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

std::string render_labels(const Labels& labels) {
    std::string out;
    for (const auto& [key, value] : labels) {
        if (!out.empty()) out += ',';
        out += key;
        out += "=\"";
        append_escaped(out, value);
        out += '"';
    }
    return out;
}

MetricsRegistry::Series& MetricsRegistry::intern(std::string_view name, const Labels& labels,
                                                 MetricSample::Kind kind,
                                                 std::span<const double> bounds) {
    std::string rendered = render_labels(labels);
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& s : series_) {
        if (s->name == name && s->labels == rendered) {
            TERAPHIM_ASSERT_MSG(s->kind == kind, "metric re-registered with a different kind");
            return *s;
        }
    }
    auto s = std::make_unique<Series>();
    s->kind = kind;
    s->name = std::string(name);
    s->labels = std::move(rendered);
    if (kind == MetricSample::Kind::Histogram) {
        if (bounds.empty()) bounds = Histogram::default_latency_bounds_ms();
        s->histogram = std::make_unique<Histogram>(std::vector<double>(bounds.begin(), bounds.end()));
    }
    series_.push_back(std::move(s));
    return *series_.back();
}

Counter& MetricsRegistry::counter(std::string_view name, const Labels& labels) {
    return intern(name, labels, MetricSample::Kind::Counter, {}).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, const Labels& labels) {
    return intern(name, labels, MetricSample::Kind::Gauge, {}).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, const Labels& labels,
                                      std::span<const double> bounds) {
    return *intern(name, labels, MetricSample::Kind::Histogram, bounds).histogram;
}

std::vector<MetricSample> MetricsRegistry::collect() const {
    std::vector<MetricSample> out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        out.reserve(series_.size());
        for (const auto& s : series_) {
            MetricSample sample;
            sample.kind = s->kind;
            sample.name = s->name;
            sample.labels = s->labels;
            switch (s->kind) {
                case MetricSample::Kind::Counter:
                    sample.value = static_cast<double>(s->counter.value());
                    break;
                case MetricSample::Kind::Gauge:
                    sample.value = static_cast<double>(s->gauge.value());
                    break;
                case MetricSample::Kind::Histogram: {
                    const Histogram& h = *s->histogram;
                    sample.bounds = h.bounds();
                    sample.bucket_counts.resize(h.bounds().size() + 1);
                    for (std::size_t i = 0; i < sample.bucket_counts.size(); ++i) {
                        sample.bucket_counts[i] = h.bucket_count(i);
                    }
                    sample.count = h.count();
                    sample.sum = h.sum();
                    break;
                }
            }
            out.push_back(std::move(sample));
        }
    }
    std::sort(out.begin(), out.end(), [](const MetricSample& a, const MetricSample& b) {
        return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
    });
    return out;
}

std::string MetricsRegistry::render() const { return render_prometheus(collect()); }

// ---- Rendering -------------------------------------------------------------

std::string render_prometheus(std::span<const MetricSample> samples) {
    std::vector<const MetricSample*> sorted;
    sorted.reserve(samples.size());
    for (const MetricSample& s : samples) sorted.push_back(&s);
    std::sort(sorted.begin(), sorted.end(), [](const MetricSample* a, const MetricSample* b) {
        return std::tie(a->name, a->labels) < std::tie(b->name, b->labels);
    });

    std::string out;
    const std::string* current_family = nullptr;
    for (const MetricSample* s : sorted) {
        if (current_family == nullptr || *current_family != s->name) {
            current_family = &s->name;
            out += "# TYPE ";
            out += s->name;
            switch (s->kind) {
                case MetricSample::Kind::Counter: out += " counter\n"; break;
                case MetricSample::Kind::Gauge: out += " gauge\n"; break;
                case MetricSample::Kind::Histogram: out += " histogram\n"; break;
            }
        }
        if (s->kind == MetricSample::Kind::Histogram) {
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i < s->bucket_counts.size(); ++i) {
                if (i < s->bucket_counts.size() - 1 && i >= s->bounds.size()) break;
                cumulative += s->bucket_counts[i];
                std::string le = "le=\"";
                if (i < s->bounds.size()) {
                    append_number(le, s->bounds[i]);
                } else {
                    le += "+Inf";
                }
                le += '"';
                append_series(out, s->name + "_bucket", s->labels, le);
                out += ' ';
                append_number(out, static_cast<double>(cumulative));
                out += '\n';
            }
            append_series(out, s->name + "_sum", s->labels);
            out += ' ';
            append_number(out, s->sum);
            out += '\n';
            append_series(out, s->name + "_count", s->labels);
            out += ' ';
            append_number(out, static_cast<double>(s->count));
            out += '\n';
        } else {
            append_series(out, s->name, s->labels);
            out += ' ';
            append_number(out, s->value);
            out += '\n';
        }
    }
    return out;
}

// ---- Global registry / Span ------------------------------------------------

MetricsRegistry* global() noexcept { return g_registry.load(std::memory_order_acquire); }

void set_global(MetricsRegistry* registry) noexcept {
    g_registry.store(registry, std::memory_order_release);
}

double Span::stop() {
    if (!stopped_) {
        stopped_ = true;
        elapsed_ms_ = timer_.elapsed_ms();
        if (out_ != nullptr) *out_ += elapsed_ms_;
        if (histogram_ != nullptr) histogram_->observe(elapsed_ms_);
    }
    return elapsed_ms_;
}

}  // namespace teraphim::obs
