// Query/document tokenization for indexing.
//
// A token is a maximal run of alphanumeric characters, case-folded to
// lower case — the same definition MG applies when parsing TREC data.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace teraphim::text {

/// Extracts lower-cased alphanumeric tokens from `text`.
std::vector<std::string> tokenize(std::string_view text);

/// Streaming variant: invokes `fn(token)` for every token without
/// materialising the vector. `Fn` receives a std::string_view valid only
/// during the call.
template <typename Fn>
void for_each_token(std::string_view text, Fn&& fn) {
    std::string scratch;
    std::size_t pos = 0;
    const auto is_word = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9');
    };
    while (pos < text.size()) {
        while (pos < text.size() && !is_word(text[pos])) ++pos;
        std::size_t end = pos;
        while (end < text.size() && is_word(text[end])) ++end;
        if (end > pos) {
            scratch.assign(text.substr(pos, end - pos));
            for (char& c : scratch) {
                if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
            }
            fn(std::string_view(scratch));
        }
        pos = end;
    }
}

}  // namespace teraphim::text
