#include "text/stopwords.h"

#include <string>

namespace teraphim::text {

StopList::StopList(std::initializer_list<std::string_view> words) {
    for (std::string_view w : words) words_.emplace(w);
}

bool StopList::contains(std::string_view term) const {
    return words_.find(term) != words_.end();
}

const StopList& StopList::english() {
    static const StopList list{
        "a",       "about",  "above",  "after",   "again",   "against", "all",
        "am",      "an",     "and",    "any",     "are",     "as",      "at",
        "be",      "because","been",   "before",  "being",   "below",   "between",
        "both",    "but",    "by",     "can",     "cannot",  "could",   "did",
        "do",      "does",   "doing",  "down",    "during",  "each",    "few",
        "for",     "from",   "further","had",     "has",     "have",    "having",
        "he",      "her",    "here",   "hers",    "herself", "him",     "himself",
        "his",     "how",    "i",      "if",      "in",      "into",    "is",
        "it",      "its",    "itself", "just",    "me",      "more",    "most",
        "my",      "myself", "no",     "nor",     "not",     "now",     "of",
        "off",     "on",     "once",   "only",    "or",      "other",   "our",
        "ours",    "ourselves", "out", "over",    "own",     "same",    "she",
        "should",  "so",     "some",   "such",    "than",    "that",    "the",
        "their",   "theirs", "them",   "themselves", "then", "there",   "these",
        "they",    "this",   "those",  "through", "to",      "too",     "under",
        "until",   "up",     "very",   "was",     "we",      "were",    "what",
        "when",    "where",  "which",  "while",   "who",     "whom",    "why",
        "will",    "with",   "would",  "you",     "your",    "yours",   "yourself",
        "yourselves",
    };
    return list;
}

const StopList& StopList::none() {
    static const StopList list;
    return list;
}

}  // namespace teraphim::text
