#include "text/pipeline.h"

#include "text/stemmer.h"
#include "text/tokenizer.h"
#include "util/error.h"

namespace teraphim::text {

Pipeline::Pipeline(PipelineOptions options, const StopList* stoplist)
    : options_(options), stoplist_(stoplist) {
    TERAPHIM_ASSERT(stoplist_ != nullptr);
}

std::string Pipeline::normalize(std::string_view token) const {
    if (token.size() < options_.min_term_length) return {};
    if (options_.remove_stopwords && stoplist_->contains(token)) return {};
    if (options_.stem) return porter_stem(token);
    return std::string(token);
}

std::vector<std::string> Pipeline::terms(std::string_view raw_text) const {
    std::vector<std::string> out;
    for_each_token(raw_text, [&](std::string_view token) {
        std::string term = normalize(token);
        if (!term.empty()) out.push_back(std::move(term));
    });
    return out;
}

}  // namespace teraphim::text
