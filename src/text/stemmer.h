// Porter stemming.
//
// MG optionally stems terms before indexing; TERAPHIM inherits the
// option. This is the classic Porter (1980) algorithm, steps 1a-5b.
#pragma once

#include <string>
#include <string_view>

namespace teraphim::text {

/// Returns the Porter stem of a lower-case ASCII word. Words shorter
/// than three characters are returned unchanged, per the algorithm.
std::string porter_stem(std::string_view word);

}  // namespace teraphim::text
