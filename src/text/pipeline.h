// The term pipeline: tokenize -> stop -> (optionally) stem.
//
// Both indexing and query parsing run through the same pipeline so that
// document and query vocabularies agree — a prerequisite for the CV
// methodology, where the receptionist's merged vocabulary must use the
// same term forms as every librarian.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "text/stopwords.h"

namespace teraphim::text {

/// Pipeline configuration. The defaults match the paper's setup:
/// stop-words removed, no stemming (MG's default TREC runs).
struct PipelineOptions {
    bool remove_stopwords = true;
    bool stem = false;
    /// Terms shorter than this survive only if numeric.
    std::size_t min_term_length = 1;
};

/// Applies the configured transformations to raw text.
class Pipeline {
public:
    explicit Pipeline(PipelineOptions options = {},
                      const StopList* stoplist = &StopList::english());

    /// Terms of a document or query, in occurrence order.
    std::vector<std::string> terms(std::string_view raw_text) const;

    /// Normalises one already-tokenized term; returns empty string if the
    /// term is dropped (stopped or too short).
    std::string normalize(std::string_view token) const;

    const PipelineOptions& options() const { return options_; }

private:
    PipelineOptions options_;
    const StopList* stoplist_;
};

}  // namespace teraphim::text
