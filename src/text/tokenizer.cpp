#include "text/tokenizer.h"

namespace teraphim::text {

std::vector<std::string> tokenize(std::string_view text) {
    std::vector<std::string> out;
    for_each_token(text, [&](std::string_view token) { out.emplace_back(token); });
    return out;
}

}  // namespace teraphim::text
