#include "text/stemmer.h"

namespace teraphim::text {

namespace {

// Working buffer for the Porter algorithm. `end` is the index one past
// the last live character; suffix tests and removals adjust it.
struct Stem {
    std::string b;
    std::size_t end;  // one past last character
    std::size_t j = 0;  // set by ends(): start of the matched suffix

    explicit Stem(std::string_view w) : b(w), end(w.size()) {}

    bool is_consonant(std::size_t i) const {
        switch (b[i]) {
            case 'a': case 'e': case 'i': case 'o': case 'u':
                return false;
            case 'y':
                return i == 0 ? true : !is_consonant(i - 1);
            default:
                return true;
        }
    }

    // Porter's measure m: the number of VC sequences in b[0..j).
    int measure() const {
        int n = 0;
        std::size_t i = 0;
        for (;;) {
            if (i >= j) return n;
            if (!is_consonant(i)) break;
            ++i;
        }
        ++i;
        for (;;) {
            for (;;) {
                if (i >= j) return n;
                if (is_consonant(i)) break;
                ++i;
            }
            ++i;
            ++n;
            for (;;) {
                if (i >= j) return n;
                if (!is_consonant(i)) break;
                ++i;
            }
            ++i;
        }
    }

    bool vowel_in_stem() const {
        for (std::size_t i = 0; i < j; ++i) {
            if (!is_consonant(i)) return true;
        }
        return false;
    }

    bool double_consonant(std::size_t i) const {
        if (i < 1) return false;
        if (b[i] != b[i - 1]) return false;
        return is_consonant(i);
    }

    // consonant-vowel-consonant ending at i, where the final consonant is
    // not w, x or y — the condition *o of the paper.
    bool cvc(std::size_t i) const {
        if (i < 2 || !is_consonant(i) || is_consonant(i - 1) || !is_consonant(i - 2)) {
            return false;
        }
        const char c = b[i];
        return c != 'w' && c != 'x' && c != 'y';
    }

    bool ends(std::string_view s) {
        if (s.size() > end) return false;
        if (b.compare(end - s.size(), s.size(), s) != 0) return false;
        j = end - s.size();
        return true;
    }

    void set_to(std::string_view s) {
        b.replace(j, end - j, s);
        end = j + s.size();
    }

    void replace_if_m_positive(std::string_view s) {
        if (measure() > 0) set_to(s);
    }
};

void step1ab(Stem& z) {
    if (z.b[z.end - 1] == 's') {
        if (z.ends("sses")) {
            z.end -= 2;
        } else if (z.ends("ies")) {
            z.set_to("i");
        } else if (z.end >= 2 && z.b[z.end - 2] != 's') {
            --z.end;
        }
    }
    if (z.ends("eed")) {
        if (z.measure() > 0) --z.end;
    } else if ((z.ends("ed") || z.ends("ing")) && z.vowel_in_stem()) {
        z.end = z.j;
        if (z.ends("at")) {
            z.set_to("ate");
        } else if (z.ends("bl")) {
            z.set_to("ble");
        } else if (z.ends("iz")) {
            z.set_to("ize");
        } else if (z.double_consonant(z.end - 1)) {
            const char c = z.b[z.end - 1];
            if (c != 'l' && c != 's' && c != 'z') --z.end;
        } else {
            z.j = z.end;
            if (z.measure() == 1 && z.cvc(z.end - 1)) z.set_to("e");
        }
    }
}

void step1c(Stem& z) {
    if (z.ends("y") && z.vowel_in_stem()) z.b[z.end - 1] = 'i';
}

void step2(Stem& z) {
    switch (z.b[z.end - 2]) {
        case 'a':
            if (z.ends("ational")) { z.replace_if_m_positive("ate"); break; }
            if (z.ends("tional")) { z.replace_if_m_positive("tion"); break; }
            break;
        case 'c':
            if (z.ends("enci")) { z.replace_if_m_positive("ence"); break; }
            if (z.ends("anci")) { z.replace_if_m_positive("ance"); break; }
            break;
        case 'e':
            if (z.ends("izer")) { z.replace_if_m_positive("ize"); break; }
            break;
        case 'l':
            if (z.ends("bli")) { z.replace_if_m_positive("ble"); break; }
            if (z.ends("alli")) { z.replace_if_m_positive("al"); break; }
            if (z.ends("entli")) { z.replace_if_m_positive("ent"); break; }
            if (z.ends("eli")) { z.replace_if_m_positive("e"); break; }
            if (z.ends("ousli")) { z.replace_if_m_positive("ous"); break; }
            break;
        case 'o':
            if (z.ends("ization")) { z.replace_if_m_positive("ize"); break; }
            if (z.ends("ation")) { z.replace_if_m_positive("ate"); break; }
            if (z.ends("ator")) { z.replace_if_m_positive("ate"); break; }
            break;
        case 's':
            if (z.ends("alism")) { z.replace_if_m_positive("al"); break; }
            if (z.ends("iveness")) { z.replace_if_m_positive("ive"); break; }
            if (z.ends("fulness")) { z.replace_if_m_positive("ful"); break; }
            if (z.ends("ousness")) { z.replace_if_m_positive("ous"); break; }
            break;
        case 't':
            if (z.ends("aliti")) { z.replace_if_m_positive("al"); break; }
            if (z.ends("iviti")) { z.replace_if_m_positive("ive"); break; }
            if (z.ends("biliti")) { z.replace_if_m_positive("ble"); break; }
            break;
        case 'g':
            if (z.ends("logi")) { z.replace_if_m_positive("log"); break; }
            break;
        default:
            break;
    }
}

void step3(Stem& z) {
    switch (z.b[z.end - 1]) {
        case 'e':
            if (z.ends("icate")) { z.replace_if_m_positive("ic"); break; }
            if (z.ends("ative")) { z.replace_if_m_positive(""); break; }
            if (z.ends("alize")) { z.replace_if_m_positive("al"); break; }
            break;
        case 'i':
            if (z.ends("iciti")) { z.replace_if_m_positive("ic"); break; }
            break;
        case 'l':
            if (z.ends("ical")) { z.replace_if_m_positive("ic"); break; }
            if (z.ends("ful")) { z.replace_if_m_positive(""); break; }
            break;
        case 's':
            if (z.ends("ness")) { z.replace_if_m_positive(""); break; }
            break;
        default:
            break;
    }
}

void step4(Stem& z) {
    switch (z.b[z.end - 2]) {
        case 'a':
            if (z.ends("al")) break;
            return;
        case 'c':
            if (z.ends("ance")) break;
            if (z.ends("ence")) break;
            return;
        case 'e':
            if (z.ends("er")) break;
            return;
        case 'i':
            if (z.ends("ic")) break;
            return;
        case 'l':
            if (z.ends("able")) break;
            if (z.ends("ible")) break;
            return;
        case 'n':
            if (z.ends("ant")) break;
            if (z.ends("ement")) break;
            if (z.ends("ment")) break;
            if (z.ends("ent")) break;
            return;
        case 'o':
            if (z.ends("ion") && z.j >= 1 && (z.b[z.j - 1] == 's' || z.b[z.j - 1] == 't')) break;
            if (z.ends("ou")) break;
            return;
        case 's':
            if (z.ends("ism")) break;
            return;
        case 't':
            if (z.ends("ate")) break;
            if (z.ends("iti")) break;
            return;
        case 'u':
            if (z.ends("ous")) break;
            return;
        case 'v':
            if (z.ends("ive")) break;
            return;
        case 'z':
            if (z.ends("ize")) break;
            return;
        default:
            return;
    }
    if (z.measure() > 1) z.end = z.j;
}

void step5(Stem& z) {
    z.j = z.end;
    if (z.b[z.end - 1] == 'e') {
        z.j = z.end - 1;
        const int m = z.measure();
        if (m > 1 || (m == 1 && !z.cvc(z.end - 2))) --z.end;
    }
    if (z.b[z.end - 1] == 'l' && z.double_consonant(z.end - 1)) {
        z.j = z.end;
        if (z.measure() > 1) --z.end;
    }
}

}  // namespace

std::string porter_stem(std::string_view word) {
    if (word.size() <= 2) return std::string(word);
    Stem z(word);
    step1ab(z);
    if (z.end > 0) step1c(z);
    if (z.end > 1) step2(z);
    if (z.end > 0) step3(z);
    if (z.end > 1) step4(z);
    if (z.end > 0) step5(z);
    z.b.resize(z.end);
    return z.b;
}

}  // namespace teraphim::text
