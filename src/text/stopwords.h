// Stop-word filtering.
//
// The paper applies "simple transformations such as removal of
// stop-words" to the TREC queries; the same list is applied at indexing
// time so query and document vocabularies agree.
#pragma once

#include <initializer_list>
#include <string>
#include <string_view>
#include <unordered_set>

namespace teraphim::text {

/// A set of terms to drop during indexing and query parsing.
class StopList {
public:
    /// The default English list (closed-class function words).
    static const StopList& english();

    /// An empty list (stopping disabled).
    static const StopList& none();

    StopList() = default;
    explicit StopList(std::initializer_list<std::string_view> words);

    bool contains(std::string_view term) const;
    std::size_t size() const { return words_.size(); }

private:
    struct SvHash {
        using is_transparent = void;
        std::size_t operator()(std::string_view s) const {
            return std::hash<std::string_view>{}(s);
        }
    };
    struct SvEq {
        using is_transparent = void;
        bool operator()(std::string_view a, std::string_view b) const { return a == b; }
    };
    std::unordered_set<std::string, SvHash, SvEq> words_;
};

}  // namespace teraphim::text
