#include "index/postings.h"

#include <algorithm>

#include "compress/codecs.h"
#include "util/error.h"

namespace teraphim::index {

PostingsList& PostingsList::operator=(const PostingsList& other) {
    if (this == &other) return *this;
    data_ = other.data_;
    count_ = other.count_;
    golomb_b_ = other.golomb_b_;
    skip_period_ = other.skip_period_;
    payload_bits_ = other.payload_bits_;
    skip_bits_ = other.skip_bits_;
    skip_docs_ = other.skip_docs_;
    skip_bit_offsets_ = other.skip_bit_offsets_;
    max_fdt_.store(other.max_fdt_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
}

PostingsList& PostingsList::operator=(PostingsList&& other) noexcept {
    if (this == &other) return *this;
    data_ = std::move(other.data_);
    count_ = other.count_;
    golomb_b_ = other.golomb_b_;
    skip_period_ = other.skip_period_;
    payload_bits_ = other.payload_bits_;
    skip_bits_ = other.skip_bits_;
    skip_docs_ = std::move(other.skip_docs_);
    skip_bit_offsets_ = std::move(other.skip_bit_offsets_);
    max_fdt_.store(other.max_fdt_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
}

PostingsList PostingsList::build(std::span<const Posting> postings, std::uint32_t universe,
                                 std::uint32_t skip_period) {
    PostingsList list;
    list.count_ = static_cast<std::uint32_t>(postings.size());
    list.skip_period_ = skip_period;
    list.golomb_b_ =
        compress::golomb_parameter(universe ? universe : 1, postings.size());

    compress::BitWriter w;
    std::uint32_t prev_plus_one = 0;
    std::uint32_t prev_skip_doc = 0;
    std::uint64_t prev_skip_bits = 0;
    std::uint32_t max_fdt = 0;
    for (std::uint32_t i = 0; i < postings.size(); ++i) {
        const Posting& p = postings[i];
        if (p.fdt > max_fdt) max_fdt = p.fdt;
        TERAPHIM_ASSERT_MSG(p.doc + 1 > prev_plus_one, "postings must be strictly increasing");
        TERAPHIM_ASSERT_MSG(p.fdt >= 1, "in-document frequency must be positive");
        if (skip_period != 0 && i != 0 && i % skip_period == 0) {
            list.skip_docs_.push_back(prev_plus_one);
            list.skip_bit_offsets_.push_back(w.bit_count());
            // Account the entry as the vbyte-coded deltas a self-indexed
            // list embeds in its stream.
            list.skip_bits_ += compress::vbyte_length(prev_plus_one - prev_skip_doc) +
                               compress::vbyte_length(w.bit_count() - prev_skip_bits);
            prev_skip_doc = prev_plus_one;
            prev_skip_bits = w.bit_count();
        }
        const std::uint64_t gap = p.doc + 1 - prev_plus_one;
        compress::write_golomb(w, gap, list.golomb_b_);
        compress::write_gamma(w, p.fdt);
        prev_plus_one = p.doc + 1;
    }
    list.payload_bits_ = w.bit_count();
    list.data_ = w.take();
    list.max_fdt_.store(max_fdt, std::memory_order_relaxed);
    return list;
}

std::uint32_t PostingsList::max_fdt() const {
    std::uint32_t cached = max_fdt_.load(std::memory_order_relaxed);
    if (cached != 0 || count_ == 0) return cached;
    // Legacy list without the persisted statistic: one linear decode.
    // Concurrent callers may both get here; they compute and store the
    // same value, so the race is benign and the store relaxed.
    for (PostingsCursor cur(*this, /*use_skips=*/false); !cur.at_end(); cur.next()) {
        if (cur.fdt() > cached) cached = cur.fdt();
    }
    max_fdt_.store(cached, std::memory_order_relaxed);
    return cached;
}

PostingsList PostingsList::from_parts(std::vector<std::uint8_t> data, std::uint32_t count,
                                      std::uint64_t golomb_b, std::uint32_t skip_period,
                                      std::uint64_t payload_bits, std::uint64_t skip_bits,
                                      std::vector<std::uint32_t> skip_docs,
                                      std::vector<std::uint64_t> skip_offsets,
                                      std::uint32_t max_fdt) {
    TERAPHIM_ASSERT(skip_docs.size() == skip_offsets.size());
    TERAPHIM_ASSERT(golomb_b >= 1);
    PostingsList list;
    list.data_ = std::move(data);
    list.count_ = count;
    list.golomb_b_ = golomb_b;
    list.skip_period_ = skip_period;
    list.payload_bits_ = payload_bits;
    list.skip_bits_ = skip_bits;
    list.skip_docs_ = std::move(skip_docs);
    list.skip_bit_offsets_ = std::move(skip_offsets);
    list.max_fdt_.store(max_fdt, std::memory_order_relaxed);
    return list;
}

std::vector<Posting> PostingsList::decode_all() const {
    std::vector<Posting> out;
    out.reserve(count_);
    for (PostingsCursor cur(*this, /*use_skips=*/false); !cur.at_end(); cur.next()) {
        out.push_back(cur.posting());
    }
    return out;
}

PostingsCursor::PostingsCursor(const PostingsList& list, bool use_skips)
    : list_(&list), reader_(list.data_), use_skips_(use_skips) {
    if (list_->count_ > 0) {
        decode_current();
    }
}

void PostingsCursor::decode_current() {
    const std::uint64_t gap = compress::read_golomb(reader_, list_->golomb_b_);
    current_.doc = static_cast<std::uint32_t>(prev_doc_plus_one_ + gap - 1);
    current_.fdt = static_cast<std::uint32_t>(compress::read_gamma(reader_));
    prev_doc_plus_one_ = current_.doc + 1;
    ++decoded_;
}

void PostingsCursor::next() {
    TERAPHIM_ASSERT(!at_end());
    ++index_;
    if (!at_end()) decode_current();
}

bool PostingsCursor::seek(std::uint32_t target) {
    if (at_end()) return false;
    if (current_.doc >= target) return current_.doc == target;

    if (use_skips_ && !list_->skip_docs_.empty()) {
        // Last sync point whose d-gap base (previous doc + 1) is <= target:
        // every posting strictly before it is < target, so the jump never
        // overshoots a potential match.
        const auto& docs = list_->skip_docs_;
        const auto it = std::upper_bound(docs.begin(), docs.end(), target);
        if (it != docs.begin()) {
            const std::size_t entry = static_cast<std::size_t>(it - docs.begin()) - 1;
            const std::uint32_t entry_index =
                static_cast<std::uint32_t>((entry + 1) * list_->skip_period_);
            if (entry_index > index_) {
                reader_.seek_bit(list_->skip_bit_offsets_[entry]);
                prev_doc_plus_one_ = docs[entry];
                index_ = entry_index;
                decode_current();
                if (current_.doc >= target) return current_.doc == target;
            }
        }
    }

    while (current_.doc < target) {
        ++index_;
        if (at_end()) return false;
        decode_current();
    }
    return current_.doc == target;
}

}  // namespace teraphim::index
