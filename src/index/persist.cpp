#include "index/persist.h"

#include <fstream>

namespace teraphim::index {

namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) throw IoError("cannot open " + path + " for reading");
    const std::streamsize size = in.tellg();
    in.seekg(0);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    if (!in.read(reinterpret_cast<char*>(bytes.data()), size)) {
        throw IoError("short read from " + path);
    }
    return bytes;
}

void write_file(const std::string& path, std::span<const std::uint8_t> bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("cannot open " + path + " for writing");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) throw IoError("short write to " + path);
}

void serialize_postings(const PostingsList& list, net::Writer& out) {
    out.u32(list.count());
    out.u64(list.golomb_b());
    out.u32(list.skip_period());
    out.u64(list.payload_bits());
    out.u64(list.skip_bits());
    out.u32(list.max_fdt());  // v2: the pruning upper-bound statistic
    out.bytes(list.raw_data());
    out.vec(list.raw_skip_docs(), [](net::Writer& w, std::uint32_t d) { w.u32(d); });
    out.vec(list.raw_skip_offsets(), [](net::Writer& w, std::uint64_t o) { w.u64(o); });
}

PostingsList deserialize_postings(net::Reader& in, std::uint8_t version) {
    const std::uint32_t count = in.u32();
    const std::uint64_t golomb_b = in.u64();
    const std::uint32_t skip_period = in.u32();
    const std::uint64_t payload_bits = in.u64();
    const std::uint64_t skip_bits = in.u64();
    // v1 files carry no max_fdt; 0 makes the list recompute it lazily.
    const std::uint32_t max_fdt = version >= 2 ? in.u32() : 0;
    auto data = in.bytes();
    auto skip_docs = in.vec<std::uint32_t>([](net::Reader& r) { return r.u32(); });
    auto skip_offsets = in.vec<std::uint64_t>([](net::Reader& r) { return r.u64(); });
    return PostingsList::from_parts(std::move(data), count, golomb_b, skip_period,
                                    payload_bits, skip_bits, std::move(skip_docs),
                                    std::move(skip_offsets), max_fdt);
}

}  // namespace

void serialize_index(const InvertedIndex& index, net::Writer& out) {
    out.u32(kIndexMagic);
    out.u8(kIndexFormatVersion);

    const auto num_terms = static_cast<std::uint32_t>(index.num_terms());
    out.u32(num_terms);
    for (TermId t = 0; t < num_terms; ++t) {
        out.str(index.vocabulary().term(t));
        out.u64(index.stats(t).doc_frequency);
        out.u64(index.stats(t).collection_frequency);
    }
    for (TermId t = 0; t < num_terms; ++t) {
        serialize_postings(index.postings(t), out);
    }
    out.u32(index.num_documents());
    for (DocNum d = 0; d < index.num_documents(); ++d) {
        out.f64(index.doc_weight(d));
        out.u32(index.doc_length(d));
    }
}

InvertedIndex deserialize_index(net::Reader& in) {
    if (in.u32() != kIndexMagic) throw DataError("not a TERAPHIM index file");
    const std::uint8_t version = in.u8();
    if (version < kIndexMinFormatVersion || version > kIndexFormatVersion) {
        throw DataError("unsupported index format version " + std::to_string(version));
    }

    const std::uint32_t num_terms = in.u32();
    Vocabulary vocab;
    std::vector<TermStats> stats;
    stats.reserve(num_terms);
    for (std::uint32_t t = 0; t < num_terms; ++t) {
        const TermId id = vocab.add_or_get(in.str());
        if (id != t) throw DataError("index file contains duplicate terms");
        TermStats st;
        st.doc_frequency = in.u64();
        st.collection_frequency = in.u64();
        stats.push_back(st);
    }
    std::vector<PostingsList> lists;
    lists.reserve(num_terms);
    for (std::uint32_t t = 0; t < num_terms; ++t) {
        lists.push_back(deserialize_postings(in, version));
    }
    const std::uint32_t num_docs = in.u32();
    std::vector<double> weights;
    std::vector<std::uint32_t> lengths;
    weights.reserve(num_docs);
    lengths.reserve(num_docs);
    for (std::uint32_t d = 0; d < num_docs; ++d) {
        weights.push_back(in.f64());
        lengths.push_back(in.u32());
    }
    return InvertedIndex(std::move(vocab), std::move(stats), std::move(lists),
                         std::move(weights), std::move(lengths));
}

void save_index(const InvertedIndex& index, const std::string& path) {
    net::Writer out;
    serialize_index(index, out);
    write_file(path, out.view());
}

InvertedIndex load_index(const std::string& path) {
    const auto bytes = read_file(path);
    net::Reader in(bytes);
    return deserialize_index(in);
}

}  // namespace teraphim::index
