#include "index/inverted_index.h"

#include "util/error.h"

namespace teraphim::index {

InvertedIndex::InvertedIndex(Vocabulary vocabulary, std::vector<TermStats> stats,
                             std::vector<PostingsList> lists, std::vector<double> doc_weights,
                             std::vector<std::uint32_t> doc_lengths)
    : vocabulary_(std::move(vocabulary)),
      stats_(std::move(stats)),
      lists_(std::move(lists)),
      doc_weights_(std::move(doc_weights)),
      doc_lengths_(std::move(doc_lengths)) {
    TERAPHIM_ASSERT(stats_.size() == vocabulary_.size());
    TERAPHIM_ASSERT(lists_.size() == vocabulary_.size());
    TERAPHIM_ASSERT(doc_lengths_.size() == doc_weights_.size());
    for (const double w : doc_weights_) {
        if (w > 0.0 && (min_positive_doc_weight_ == 0.0 || w < min_positive_doc_weight_)) {
            min_positive_doc_weight_ = w;
        }
    }
}

const TermStats& InvertedIndex::stats(TermId id) const {
    TERAPHIM_ASSERT(id < stats_.size());
    return stats_[id];
}

const PostingsList& InvertedIndex::postings(TermId id) const {
    TERAPHIM_ASSERT(id < lists_.size());
    return lists_[id];
}

double InvertedIndex::doc_weight(DocNum doc) const {
    TERAPHIM_ASSERT(doc < doc_weights_.size());
    return doc_weights_[doc];
}

std::uint32_t InvertedIndex::doc_length(DocNum doc) const {
    TERAPHIM_ASSERT(doc < doc_lengths_.size());
    return doc_lengths_[doc];
}

IndexStats InvertedIndex::index_stats() const {
    IndexStats s;
    s.num_documents = doc_weights_.size();
    s.num_terms = vocabulary_.size();
    for (const auto& list : lists_) {
        s.num_postings += list.count();
        s.postings_bits += list.payload_bits();
        s.skip_bits += list.skip_bits();
    }
    s.vocabulary_bytes = vocabulary_.serialized_bytes();
    // W_d values are stored as 4-byte floats in the MG on-disk layout.
    s.weights_bytes = doc_weights_.size() * 4;
    return s;
}

}  // namespace teraphim::index
