// In-memory index construction.
//
// Documents are fed through the text pipeline by the caller; the builder
// receives term lists, accumulates per-term postings, and on build()
// compresses everything into an InvertedIndex, computing the document
// weights W_d = sqrt(sum_t log(f_dt + 1)^2) as it goes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/inverted_index.h"

namespace teraphim::index {

struct BuildOptions {
    /// Sync-point spacing for self-indexing; 0 disables skips.
    std::uint32_t skip_period = 64;
};

class IndexBuilder {
public:
    explicit IndexBuilder(BuildOptions options = {});

    /// Adds the next document (terms in occurrence order, already
    /// normalised). Returns the document number assigned.
    DocNum add_document(std::span<const std::string> terms);

    std::uint32_t document_count() const { return num_docs_; }

    /// Consumes the builder and produces the immutable index.
    InvertedIndex build() &&;

private:
    BuildOptions options_;
    Vocabulary vocabulary_;
    std::vector<std::vector<Posting>> term_postings_;
    std::vector<TermStats> stats_;
    std::vector<double> doc_weights_;
    std::vector<std::uint32_t> doc_lengths_;
    std::uint32_t num_docs_ = 0;
    // Scratch: per-document term frequencies, reused across documents.
    // `scratch_order_` lists each distinct term at its first occurrence;
    // W_d accumulates in that order so the sum is reproducible from the
    // document text alone (see add_document).
    std::unordered_map<TermId, std::uint32_t> scratch_freqs_;
    std::vector<TermId> scratch_order_;
};

}  // namespace teraphim::index
