// In-memory delta index for live collections.
//
// A librarian's main InvertedIndex is immutable; a DeltaIndex absorbs
// documents added after it was built. Delta documents are numbered on
// top of a base collection of `base_documents()` docs, so delta doc i
// carries the global number base + i — exactly the number it would have
// received had it been present in a from-scratch build of the combined
// collection. add_document() reproduces IndexBuilder's W_d arithmetic
// bit for bit (including the order in which per-term contributions are
// summed), which is what lets query-time main+delta merging and
// merge_delta() both return rankings byte-identical to that rebuild
// (DESIGN.md §16).
//
// The type is copyable on purpose: ingestion publishes a new delta by
// copy-on-write (copy, extend, atomically swap a shared_ptr) so query
// threads never observe a half-applied batch.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "index/inverted_index.h"
#include "index/postings.h"
#include "index/vocabulary.h"

namespace teraphim::index {

class DeltaIndex {
public:
    /// Per-term state. Postings carry *global* doc numbers (>= base),
    /// sorted by construction since documents arrive in number order.
    struct TermEntry {
        TermStats stats;
        std::uint32_t max_fdt = 0;
        std::vector<Posting> postings;
    };

    DeltaIndex() = default;
    explicit DeltaIndex(std::uint32_t base_documents) : base_(base_documents) {}

    /// Adds the next document (terms in occurrence order, already
    /// normalised by the pipeline). Returns the global doc number.
    DocNum add_document(std::span<const std::string> terms);

    std::uint32_t base_documents() const { return base_; }
    std::uint32_t num_documents() const {
        return static_cast<std::uint32_t>(doc_weights_.size());
    }
    bool empty() const { return doc_weights_.empty(); }

    /// Term lookup by string (the delta keeps its own term-id space; ids
    /// never leave this class). Null when the term has no delta postings.
    const TermEntry* find(std::string_view term) const;

    /// W_d of a delta document, addressed by *global* doc number.
    double doc_weight(DocNum doc) const;
    std::uint32_t doc_length(DocNum doc) const;

    /// Smallest strictly positive delta W_d (0 when none). Combined with
    /// the main index's value it gives pruning its most favourable
    /// normalisation denominator over the merged collection.
    double min_positive_doc_weight() const;

    /// Distinct terms with at least one delta posting, in first-occurrence
    /// order (the order a from-scratch rebuild would assign ids to terms
    /// the main vocabulary lacks).
    std::size_t num_terms() const { return terms_.size(); }
    const std::string& term(std::size_t slot) const { return terms_[slot]; }
    const TermEntry& entry(std::size_t slot) const { return entries_[slot]; }

    std::uint64_t num_postings() const { return num_postings_; }

    /// Rough resident size, for the compaction trigger and gauges.
    std::uint64_t approx_bytes() const;

private:
    std::uint32_t base_ = 0;
    std::unordered_map<std::string, std::uint32_t> slots_;  // term -> slot
    std::vector<std::string> terms_;                        // slot -> term
    std::vector<TermEntry> entries_;                        // slot -> postings
    std::vector<double> doc_weights_;
    std::vector<std::uint32_t> doc_lengths_;
    std::uint64_t num_postings_ = 0;
};

/// Folds a delta into a fresh compressed index over the combined
/// collection: each main list is decoded, the term's delta postings
/// appended (all delta docs are numbered past every main doc), and the
/// result recompressed with `PostingsList::build` against the combined
/// universe; delta-only terms are appended to the vocabulary in
/// first-occurrence order. Because add_document() mirrors IndexBuilder,
/// the merged index is identical — postings bytes, TPIX bounds, term
/// stats, and document weights — to one built from scratch over the
/// concatenated documents with the same skip period.
InvertedIndex merge_delta(const InvertedIndex& main, const DeltaIndex& delta,
                          std::uint32_t skip_period = 64);

}  // namespace teraphim::index
