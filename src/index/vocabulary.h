// Term vocabulary: string <-> TermId mapping plus per-term statistics.
//
// Each librarian owns one vocabulary; the CV receptionist merges the
// vocabularies of its librarians into a single global one (Section 3,
// "Central Vocabulary"). Term ids are dense and local to a vocabulary.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace teraphim::index {

using TermId = std::uint32_t;

/// Per-term statistics as used by the cosine measure.
struct TermStats {
    std::uint64_t doc_frequency = 0;     ///< f_t: documents containing t
    std::uint64_t collection_frequency = 0;  ///< total occurrences of t
};

class Vocabulary {
public:
    Vocabulary() = default;
    // The lookup map holds views into terms_; moving preserves them
    // (deque nodes and map buckets travel), but a naive copy would leave
    // the clone's map viewing the original's strings.
    Vocabulary(const Vocabulary&) = delete;
    Vocabulary& operator=(const Vocabulary&) = delete;
    Vocabulary(Vocabulary&&) = default;
    Vocabulary& operator=(Vocabulary&&) = default;

    /// Returns the id of `term`, creating it if absent.
    TermId add_or_get(std::string_view term);

    /// Looks a term up without inserting.
    std::optional<TermId> lookup(std::string_view term) const;

    const std::string& term(TermId id) const;
    std::size_t size() const { return terms_.size(); }

    /// Approximate serialized size: front-coded sorted strings plus a
    /// vbyte doc-frequency per term — the MG vocabulary-file layout.
    /// Used for the storage accounting in Section 4 ("less than 10 Mb
    /// for the gigabyte of text").
    std::uint64_t serialized_bytes() const;

    /// Term ids in lexicographic term order (deterministic iteration,
    /// used by vocabulary merging).
    std::vector<TermId> sorted_ids() const;

private:
    // Deque keeps element addresses stable, so the lookup map can key on
    // string_views into the stored strings without copies going stale.
    std::deque<std::string> terms_;
    std::unordered_map<std::string_view, TermId> lookup_;
};

}  // namespace teraphim::index
