#include "index/delta_index.h"

#include <cmath>

#include "util/error.h"

namespace teraphim::index {

DocNum DeltaIndex::add_document(std::span<const std::string> terms) {
    const DocNum doc = base_ + num_documents();
    // Per-document frequency scratch. `order` records each distinct
    // term's first occurrence: W_d sums the per-term contributions in
    // that order, matching IndexBuilder::add_document bit for bit.
    std::unordered_map<std::uint32_t, std::uint32_t> freqs;
    std::vector<std::uint32_t> order;
    freqs.reserve(terms.size());
    order.reserve(terms.size());
    for (const auto& term : terms) {
        std::uint32_t slot;
        if (const auto it = slots_.find(term); it != slots_.end()) {
            slot = it->second;
        } else {
            slot = static_cast<std::uint32_t>(terms_.size());
            slots_.emplace(term, slot);
            terms_.push_back(term);
            entries_.emplace_back();
        }
        const auto [fit, fresh] = freqs.try_emplace(slot, 0U);
        if (fresh) order.push_back(slot);
        ++fit->second;
    }
    double weight_sq = 0.0;
    for (const std::uint32_t slot : order) {
        const std::uint32_t fdt = freqs[slot];
        TermEntry& e = entries_[slot];
        e.postings.push_back({doc, fdt});
        ++e.stats.doc_frequency;
        e.stats.collection_frequency += fdt;
        if (fdt > e.max_fdt) e.max_fdt = fdt;
        ++num_postings_;
        const double wdt = std::log(static_cast<double>(fdt) + 1.0);
        weight_sq += wdt * wdt;
    }
    doc_weights_.push_back(std::sqrt(weight_sq));
    doc_lengths_.push_back(static_cast<std::uint32_t>(terms.size()));
    return doc;
}

const DeltaIndex::TermEntry* DeltaIndex::find(std::string_view term) const {
    // unordered_map<string, ...>::find on string_view needs transparent
    // hashing; the delta is queried with terms that already live in
    // std::string form almost everywhere, so a temporary key is fine.
    const auto it = slots_.find(std::string(term));
    return it == slots_.end() ? nullptr : &entries_[it->second];
}

double DeltaIndex::doc_weight(DocNum doc) const {
    TERAPHIM_ASSERT_MSG(doc >= base_ && doc - base_ < doc_weights_.size(),
                        "delta doc_weight out of range");
    return doc_weights_[doc - base_];
}

std::uint32_t DeltaIndex::doc_length(DocNum doc) const {
    TERAPHIM_ASSERT_MSG(doc >= base_ && doc - base_ < doc_lengths_.size(),
                        "delta doc_length out of range");
    return doc_lengths_[doc - base_];
}

double DeltaIndex::min_positive_doc_weight() const {
    double min_wd = 0.0;
    for (const double wd : doc_weights_) {
        if (wd > 0.0 && (min_wd == 0.0 || wd < min_wd)) min_wd = wd;
    }
    return min_wd;
}

std::uint64_t DeltaIndex::approx_bytes() const {
    std::uint64_t bytes = num_postings_ * sizeof(Posting);
    bytes += doc_weights_.size() * (sizeof(double) + sizeof(std::uint32_t));
    for (const auto& term : terms_) {
        bytes += term.size() + sizeof(TermEntry) + 2 * sizeof(void*);
    }
    return bytes;
}

InvertedIndex merge_delta(const InvertedIndex& main, const DeltaIndex& delta,
                          std::uint32_t skip_period) {
    TERAPHIM_ASSERT_MSG(delta.base_documents() == main.num_documents(),
                        "delta was built over a different base collection");
    const std::uint32_t n_total = main.num_documents() + delta.num_documents();

    // Vocabulary: main ids first (unchanged), then delta-only terms in
    // first-occurrence order — the id assignment a from-scratch build
    // over the concatenated documents would produce.
    Vocabulary vocab;
    std::vector<TermStats> stats;
    const std::size_t main_terms = main.vocabulary().size();
    stats.reserve(main_terms + delta.num_terms());
    for (TermId id = 0; id < main_terms; ++id) {
        const TermId assigned = vocab.add_or_get(main.vocabulary().term(id));
        TERAPHIM_ASSERT_MSG(assigned == id, "vocabulary copy must preserve ids");
        stats.push_back(main.stats(id));
    }

    // Delta postings per merged term id (empty span when untouched).
    std::vector<const DeltaIndex::TermEntry*> extra(main_terms, nullptr);
    for (std::size_t slot = 0; slot < delta.num_terms(); ++slot) {
        const DeltaIndex::TermEntry& e = delta.entry(slot);
        const TermId id = vocab.add_or_get(delta.term(slot));
        if (id < main_terms) {
            extra[id] = &e;
            stats[id].doc_frequency += e.stats.doc_frequency;
            stats[id].collection_frequency += e.stats.collection_frequency;
        } else {
            extra.push_back(&e);
            stats.push_back(e.stats);
        }
    }

    std::vector<PostingsList> lists;
    lists.reserve(extra.size());
    for (TermId id = 0; id < extra.size(); ++id) {
        std::vector<Posting> postings;
        if (id < main_terms) postings = main.postings(id).decode_all();
        if (extra[id] != nullptr) {
            // Every delta doc is numbered past every main doc, so the
            // concatenation stays sorted by strictly increasing doc.
            postings.insert(postings.end(), extra[id]->postings.begin(),
                            extra[id]->postings.end());
        }
        lists.push_back(PostingsList::build(postings, n_total, skip_period));
    }

    std::vector<double> doc_weights(main.doc_weights().begin(), main.doc_weights().end());
    std::vector<std::uint32_t> doc_lengths;
    doc_weights.reserve(n_total);
    doc_lengths.reserve(n_total);
    for (DocNum d = 0; d < main.num_documents(); ++d) {
        doc_lengths.push_back(main.doc_length(d));
    }
    for (DocNum d = 0; d < delta.num_documents(); ++d) {
        const DocNum global = delta.base_documents() + d;
        doc_weights.push_back(delta.doc_weight(global));
        doc_lengths.push_back(delta.doc_length(global));
    }

    return InvertedIndex(std::move(vocab), std::move(stats), std::move(lists),
                         std::move(doc_weights), std::move(doc_lengths));
}

}  // namespace teraphim::index
