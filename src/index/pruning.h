// Index pruning by f_dt thresholding.
//
// Section 5 discusses shrinking the central index by dropping postings
// whose contribution to similarity scores is small (after Persin et al.):
// "applying thresholds that only reduced index size by a third severely
// degraded effectiveness" in the authors' preliminary experiments. This
// module reproduces that experiment: a pruned copy of an index keeps, per
// term, only postings whose f_dt clears a fraction of the list's largest
// f_dt. Document weights are preserved from the original index so that
// score normalisation is unchanged — only candidate discovery degrades,
// exactly the failure mode the paper reports.
#pragma once

#include <cstdint>

#include "index/inverted_index.h"

namespace teraphim::index {

struct PruneOptions {
    /// A posting (d, f_dt) survives iff f_dt >= fraction * max f_dt of
    /// its list. 0 keeps everything; 1 keeps only the per-term maxima.
    double fdt_fraction = 0.0;
    /// Postings in lists shorter than this are always kept (rare terms
    /// are the most valuable and the cheapest to store).
    std::uint32_t protect_short_lists = 2;
    std::uint32_t skip_period = 64;
};

struct PruneReport {
    std::uint64_t postings_before = 0;
    std::uint64_t postings_after = 0;
    std::uint64_t bits_before = 0;
    std::uint64_t bits_after = 0;

    double postings_kept_fraction() const {
        return postings_before == 0
                   ? 1.0
                   : static_cast<double>(postings_after) / static_cast<double>(postings_before);
    }
    double size_kept_fraction() const {
        return bits_before == 0
                   ? 1.0
                   : static_cast<double>(bits_after) / static_cast<double>(bits_before);
    }
};

/// Builds a pruned copy of `source`. Term ids and document numbers are
/// preserved; f_t statistics are recomputed over the surviving postings
/// (they drive idf, so the pruned index is self-consistent).
InvertedIndex prune_index(const InvertedIndex& source, const PruneOptions& options,
                          PruneReport* report = nullptr);

}  // namespace teraphim::index
