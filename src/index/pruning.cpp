#include "index/pruning.h"

#include <algorithm>

#include "util/error.h"

namespace teraphim::index {

InvertedIndex prune_index(const InvertedIndex& source, const PruneOptions& options,
                          PruneReport* report) {
    TERAPHIM_ASSERT(options.fdt_fraction >= 0.0 && options.fdt_fraction <= 1.0);

    Vocabulary vocab;
    std::vector<TermStats> stats;
    std::vector<PostingsList> lists;
    stats.reserve(source.num_terms());
    lists.reserve(source.num_terms());

    PruneReport local;
    std::vector<Posting> kept;
    for (TermId t = 0; t < source.num_terms(); ++t) {
        const TermId new_id = vocab.add_or_get(source.vocabulary().term(t));
        TERAPHIM_ASSERT_MSG(new_id == t, "pruning must preserve term ids");

        const PostingsList& list = source.postings(t);
        local.postings_before += list.count();
        local.bits_before += list.total_bits();

        kept.clear();
        if (list.count() < options.protect_short_lists || options.fdt_fraction == 0.0) {
            for (PostingsCursor cur(list, false); !cur.at_end(); cur.next()) {
                kept.push_back(cur.posting());
            }
        } else {
            std::uint32_t max_fdt = 0;
            for (PostingsCursor cur(list, false); !cur.at_end(); cur.next()) {
                max_fdt = std::max(max_fdt, cur.fdt());
            }
            const double cutoff = options.fdt_fraction * static_cast<double>(max_fdt);
            for (PostingsCursor cur(list, false); !cur.at_end(); cur.next()) {
                if (static_cast<double>(cur.fdt()) >= cutoff) kept.push_back(cur.posting());
            }
        }

        TermStats st;
        st.doc_frequency = kept.size();
        for (const Posting& p : kept) st.collection_frequency += p.fdt;
        stats.push_back(st);

        lists.push_back(
            PostingsList::build(kept, source.num_documents(), options.skip_period));
        local.postings_after += lists.back().count();
        local.bits_after += lists.back().total_bits();
    }

    if (report != nullptr) *report = local;

    // Weights and lengths carry over unchanged: pruning alters which
    // documents are *found*, not how found documents are normalised.
    std::vector<double> weights(source.doc_weights().begin(), source.doc_weights().end());
    std::vector<std::uint32_t> lengths;
    lengths.reserve(source.num_documents());
    for (DocNum d = 0; d < source.num_documents(); ++d) lengths.push_back(source.doc_length(d));

    return InvertedIndex(std::move(vocab), std::move(stats), std::move(lists),
                         std::move(weights), std::move(lengths));
}

}  // namespace teraphim::index
