// On-disk persistence for inverted indexes.
//
// MG is a disk-resident database: a librarian builds its index once and
// serves queries from the files thereafter. This module gives the
// reimplementation the same property: an InvertedIndex round-trips
// through a single binary file (magic + version header, vocabulary,
// per-term statistics, compressed postings with their skip tables,
// document weights). Postings bytes are written exactly as built — no
// re-encoding — so a loaded index is bit-identical to the saved one.
#pragma once

#include <cstdint>
#include <string>

#include "index/inverted_index.h"
#include "net/serialize.h"

namespace teraphim::index {

/// File magic: "TPIX" followed by a format version byte.
///
/// Version history:
///   1 — original layout.
///   2 — adds the per-list max-f_dt statistic (score upper bounds for
///       MaxScore-style pruning). v1 files still load; their lists
///       recompute the statistic lazily (PostingsList::max_fdt()).
inline constexpr std::uint32_t kIndexMagic = 0x58495054;  // 'TPIX' little-endian
inline constexpr std::uint8_t kIndexFormatVersion = 2;
inline constexpr std::uint8_t kIndexMinFormatVersion = 1;

/// Serializes the index into `out` (appended).
void serialize_index(const InvertedIndex& index, net::Writer& out);

/// Reconstructs an index; throws DataError on malformed input.
InvertedIndex deserialize_index(net::Reader& in);

/// File convenience wrappers. Throw IoError on filesystem failures.
void save_index(const InvertedIndex& index, const std::string& path);
InvertedIndex load_index(const std::string& path);

}  // namespace teraphim::index
