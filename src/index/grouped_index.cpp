#include "index/grouped_index.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace teraphim::index {

CollectionLayout::CollectionLayout(std::vector<std::uint32_t> sizes)
    : sizes_(std::move(sizes)) {
    offsets_.reserve(sizes_.size());
    for (std::uint32_t size : sizes_) {
        offsets_.push_back(total_);
        total_ += size;
    }
}

std::uint32_t CollectionLayout::size_of(std::size_t sub) const {
    TERAPHIM_ASSERT(sub < sizes_.size());
    return sizes_[sub];
}

std::uint32_t CollectionLayout::offset_of(std::size_t sub) const {
    TERAPHIM_ASSERT(sub < offsets_.size());
    return offsets_[sub];
}

std::uint32_t CollectionLayout::global_of(std::size_t sub, std::uint32_t local) const {
    TERAPHIM_ASSERT(sub < sizes_.size() && local < sizes_[sub]);
    return offsets_[sub] + local;
}

std::pair<std::size_t, std::uint32_t> CollectionLayout::local_of(std::uint32_t global_doc) const {
    TERAPHIM_ASSERT(global_doc < total_);
    // First offset greater than global_doc, minus one, owns it.
    const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), global_doc);
    const std::size_t sub = static_cast<std::size_t>(it - offsets_.begin()) - 1;
    return {sub, global_doc - offsets_[sub]};
}

GroupedIndex GroupedIndex::build(std::span<const InvertedIndex* const> subs,
                                 std::uint32_t group_size, std::uint32_t skip_period) {
    TERAPHIM_ASSERT(group_size >= 1);
    std::vector<std::uint32_t> sizes;
    sizes.reserve(subs.size());
    for (const InvertedIndex* sub : subs) {
        TERAPHIM_ASSERT(sub != nullptr);
        sizes.push_back(sub->num_documents());
    }
    CollectionLayout layout(std::move(sizes));
    const std::uint32_t num_groups =
        (layout.total_documents() + group_size - 1) / group_size;

    // Merge vocabularies into a global term space; remember each
    // subcollection's local id for each global term.
    Vocabulary merged;
    std::vector<std::vector<std::pair<std::size_t, TermId>>> members;  // per global term
    for (std::size_t s = 0; s < subs.size(); ++s) {
        const Vocabulary& vocab = subs[s]->vocabulary();
        for (TermId local = 0; local < vocab.size(); ++local) {
            const TermId global = merged.add_or_get(vocab.term(local));
            if (global == members.size()) members.emplace_back();
            members[global].emplace_back(s, local);
        }
    }

    // Per-group squared weights accumulate across terms.
    std::vector<double> group_weight_sq(num_groups, 0.0);
    std::vector<std::uint32_t> group_lengths(num_groups, 0);

    std::vector<TermStats> stats(merged.size());
    std::vector<PostingsList> lists;
    lists.reserve(merged.size());

    std::vector<Posting> scratch;
    for (TermId t = 0; t < merged.size(); ++t) {
        scratch.clear();
        // Subcollection doc ranges are disjoint and appended in order, so
        // walking members in subcollection order yields globally sorted
        // group postings without an explicit merge.
        for (const auto& [s, local_term] : members[t]) {
            const std::uint32_t offset = layout.offset_of(s);
            for (PostingsCursor cur(subs[s]->postings(local_term), false); !cur.at_end();
                 cur.next()) {
                const std::uint32_t group = (offset + cur.doc()) / group_size;
                if (!scratch.empty() && scratch.back().doc == group) {
                    scratch.back().fdt += cur.fdt();
                } else {
                    scratch.push_back({group, cur.fdt()});
                }
            }
        }
        stats[t].doc_frequency = scratch.size();
        for (const Posting& p : scratch) {
            stats[t].collection_frequency += p.fdt;
            const double wgt = std::log(static_cast<double>(p.fdt) + 1.0);
            group_weight_sq[p.doc] += wgt * wgt;
            group_lengths[p.doc] += p.fdt;
        }
        lists.push_back(PostingsList::build(scratch, num_groups, skip_period));
    }

    std::vector<double> group_weights(num_groups);
    for (std::uint32_t g = 0; g < num_groups; ++g) {
        group_weights[g] = std::sqrt(group_weight_sq[g]);
    }

    InvertedIndex index(std::move(merged), std::move(stats), std::move(lists),
                        std::move(group_weights), std::move(group_lengths));
    return GroupedIndex(std::move(index), std::move(layout), group_size);
}

std::pair<std::uint32_t, std::uint32_t> GroupedIndex::group_doc_range(
    std::uint32_t group) const {
    TERAPHIM_ASSERT(group < num_groups());
    const std::uint32_t begin = group * group_size_;
    const std::uint32_t end =
        std::min(begin + group_size_, layout_.total_documents());
    return {begin, end};
}

}  // namespace teraphim::index
