#include "index/builder.h"

#include <cmath>

#include "util/error.h"

namespace teraphim::index {

IndexBuilder::IndexBuilder(BuildOptions options) : options_(options) {}

DocNum IndexBuilder::add_document(std::span<const std::string> terms) {
    const DocNum doc = num_docs_++;
    scratch_freqs_.clear();
    scratch_order_.clear();
    for (const auto& term : terms) {
        const TermId id = vocabulary_.add_or_get(term);
        if (id == term_postings_.size()) {
            term_postings_.emplace_back();
            stats_.emplace_back();
        }
        const auto [it, fresh] = scratch_freqs_.try_emplace(id, 0U);
        if (fresh) scratch_order_.push_back(id);
        ++it->second;
    }
    // W_d sums the per-term contributions in first-occurrence order — a
    // property of the document text alone, not of the term-id space. A
    // DeltaIndex (its own id space) therefore computes bit-identical
    // weights for the same document, which the live-collection
    // byte-identity guarantee depends on (DESIGN.md §16).
    double weight_sq = 0.0;
    for (const TermId id : scratch_order_) {
        const std::uint32_t fdt = scratch_freqs_[id];
        term_postings_[id].push_back({doc, fdt});
        ++stats_[id].doc_frequency;
        stats_[id].collection_frequency += fdt;
        const double wdt = std::log(static_cast<double>(fdt) + 1.0);
        weight_sq += wdt * wdt;
    }
    doc_weights_.push_back(std::sqrt(weight_sq));
    doc_lengths_.push_back(static_cast<std::uint32_t>(terms.size()));
    return doc;
}

InvertedIndex IndexBuilder::build() && {
    // add_document appends postings in increasing doc order, so each list
    // is already sorted; compress in term-id order.
    std::vector<PostingsList> lists;
    lists.reserve(term_postings_.size());
    for (auto& postings : term_postings_) {
        lists.push_back(PostingsList::build(postings, num_docs_, options_.skip_period));
        postings.clear();
        postings.shrink_to_fit();
    }
    return InvertedIndex(std::move(vocabulary_), std::move(stats_), std::move(lists),
                         std::move(doc_weights_), std::move(doc_lengths_));
}

}  // namespace teraphim::index
