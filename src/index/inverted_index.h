// The inverted file of one (sub)collection.
//
// Holds the vocabulary, one compressed postings list per term, the
// per-term statistics (f_t), and the precomputed document weights
// W_d = sqrt(sum_t w_dt^2) that Section 2 of the paper describes. The
// weight formulation deliberately keeps W_d free of collection-wide
// statistics so that a librarian's index never needs rebuilding when the
// federation around it changes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "index/postings.h"
#include "index/vocabulary.h"

namespace teraphim::index {

using DocNum = std::uint32_t;

/// Storage accounting, in support of the paper's Section 4 analysis
/// (vocabulary "<10 Mb", central index "~40 Mb" figures).
struct IndexStats {
    std::uint64_t num_documents = 0;
    std::uint64_t num_terms = 0;
    std::uint64_t num_postings = 0;
    std::uint64_t postings_bits = 0;
    std::uint64_t skip_bits = 0;
    std::uint64_t vocabulary_bytes = 0;
    std::uint64_t weights_bytes = 0;

    std::uint64_t total_bytes() const {
        return (postings_bits + skip_bits + 7) / 8 + vocabulary_bytes + weights_bytes;
    }
};

class InvertedIndex {
public:
    /// Assembles an index from prebuilt components; used by IndexBuilder,
    /// GroupedIndex::build and prune_index. `lists[i]` and `stats[i]`
    /// describe the term with id i; `doc_weights.size()` is N.
    InvertedIndex(Vocabulary vocabulary, std::vector<TermStats> stats,
                  std::vector<PostingsList> lists, std::vector<double> doc_weights,
                  std::vector<std::uint32_t> doc_lengths);

    InvertedIndex(const InvertedIndex&) = delete;
    InvertedIndex& operator=(const InvertedIndex&) = delete;
    InvertedIndex(InvertedIndex&&) = default;
    InvertedIndex& operator=(InvertedIndex&&) = default;

    std::uint32_t num_documents() const {
        return static_cast<std::uint32_t>(doc_weights_.size());
    }
    std::size_t num_terms() const { return vocabulary_.size(); }

    const Vocabulary& vocabulary() const { return vocabulary_; }
    const TermStats& stats(TermId id) const;
    const PostingsList& postings(TermId id) const;

    /// Precomputed document weight W_d (>= 0; 0 for an empty document).
    double doc_weight(DocNum doc) const;

    /// Smallest strictly positive W_d in the collection (0 when every
    /// document is empty). The most favourable denominator a document-
    /// normalised score can see — the conversion factor MaxScore-style
    /// pruning uses to compare unnormalised upper bounds against the
    /// top-k threshold. Computed once at construction.
    double min_positive_doc_weight() const { return min_positive_doc_weight_; }

    /// Number of indexed term occurrences in the document.
    std::uint32_t doc_length(DocNum doc) const;

    std::span<const double> doc_weights() const { return doc_weights_; }

    IndexStats index_stats() const;

private:
    Vocabulary vocabulary_;
    std::vector<TermStats> stats_;
    std::vector<PostingsList> lists_;
    std::vector<double> doc_weights_;
    std::vector<std::uint32_t> doc_lengths_;
    double min_positive_doc_weight_ = 0.0;
};

}  // namespace teraphim::index
