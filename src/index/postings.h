// Compressed postings lists with self-indexing skips.
//
// Each list stores (d, f_dt) pairs for one term: document gaps are Golomb
// coded with the per-list parameter b = ceil(0.69 N / f_t), frequencies
// are Elias-gamma coded — the MG inverted-file layout. Synchronisation
// points every `skip_period` postings implement the Moffat & Zobel
// "self-indexing" mechanism [14]: a cursor can seek to the first posting
// >= d without decoding the interior of the list, which is what makes
// candidate-restricted scoring cheap in the Central Index methodology.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "compress/bitio.h"

namespace teraphim::index {

/// One (document, in-document frequency) pair.
struct Posting {
    std::uint32_t doc = 0;
    std::uint32_t fdt = 0;

    friend bool operator==(const Posting&, const Posting&) = default;
};

/// Immutable compressed list for one term.
class PostingsList {
public:
    PostingsList() = default;
    // The cached max-f_dt is an atomic (lazy recompute for legacy lists
    // may race between query threads); atomics are neither copyable nor
    // movable, so the special members are spelled out.
    PostingsList(const PostingsList& other) { *this = other; }
    PostingsList& operator=(const PostingsList& other);
    PostingsList(PostingsList&& other) noexcept { *this = std::move(other); }
    PostingsList& operator=(PostingsList&& other) noexcept;

    /// Compresses `postings`, which must be sorted by strictly increasing
    /// doc. `universe` is the number of documents N in the collection
    /// (used to choose the Golomb parameter). `skip_period` of 0 disables
    /// skip generation.
    static PostingsList build(std::span<const Posting> postings, std::uint32_t universe,
                              std::uint32_t skip_period = 64);

    std::uint32_t count() const { return count_; }
    bool empty() const { return count_ == 0; }
    std::uint64_t golomb_b() const { return golomb_b_; }

    /// Largest in-document frequency in the list — the term's score
    /// upper-bound statistic used by MaxScore-style pruning (for every
    /// monotone w_dt, w_dt(f) <= w_dt(max_fdt)). build() computes it on
    /// the fly; lists reassembled from a legacy (v1) index file arrive
    /// without it and recompute it lazily on first use, decoding the
    /// list once. 0 for an empty list.
    std::uint32_t max_fdt() const;

    /// Compressed payload size, in bits, excluding skips.
    std::uint64_t payload_bits() const { return payload_bits_; }

    /// Skip structure overhead in bits (accounted as vbyte-coded
    /// (doc-delta, bit-delta) pairs, as a self-indexed list stores them).
    std::uint64_t skip_bits() const { return skip_bits_; }

    std::uint64_t total_bits() const { return payload_bits_ + skip_bits_; }

    /// Decodes the full list (test/debug aid).
    std::vector<Posting> decode_all() const;

    // --- Persistence (index/persist.h) ---------------------------------
    std::span<const std::uint8_t> raw_data() const { return data_; }
    const std::vector<std::uint32_t>& raw_skip_docs() const { return skip_docs_; }
    const std::vector<std::uint64_t>& raw_skip_offsets() const { return skip_bit_offsets_; }
    std::uint32_t skip_period() const { return skip_period_; }

    /// Reassembles a list from its persisted parts; the parts must come
    /// from raw accessors of a list built by build(). `max_fdt` of 0 on
    /// a non-empty list means "unknown" (legacy v1 index files) and is
    /// recomputed lazily by max_fdt().
    static PostingsList from_parts(std::vector<std::uint8_t> data, std::uint32_t count,
                                   std::uint64_t golomb_b, std::uint32_t skip_period,
                                   std::uint64_t payload_bits, std::uint64_t skip_bits,
                                   std::vector<std::uint32_t> skip_docs,
                                   std::vector<std::uint64_t> skip_offsets,
                                   std::uint32_t max_fdt = 0);

    friend class PostingsCursor;

private:
    std::vector<std::uint8_t> data_;
    std::uint32_t count_ = 0;
    std::uint64_t golomb_b_ = 1;
    std::uint32_t skip_period_ = 0;
    std::uint64_t payload_bits_ = 0;
    std::uint64_t skip_bits_ = 0;
    // Skip entry i covers posting index (i+1)*skip_period: the doc id of
    // the preceding posting (d-gap base) and the absolute bit offset of
    // that posting's gap code.
    std::vector<std::uint32_t> skip_docs_;
    std::vector<std::uint64_t> skip_bit_offsets_;
    // 0 = unknown (legacy file) until the lazy recompute fills it in;
    // relaxed atomics because two query threads may recompute the same
    // value concurrently — both writes store the identical result.
    mutable std::atomic<std::uint32_t> max_fdt_{0};
};

/// Forward iterator over a PostingsList with optional skipped seeks.
///
/// The cursor counts how many postings it actually decodes; the Central
/// Index cost accounting and the skipping ablation read that counter.
class PostingsCursor {
public:
    /// `use_skips` = false forces linear decoding even when the list has
    /// skips (the paper's "in these experiments we did not employ our
    /// skipping mechanism" configuration).
    explicit PostingsCursor(const PostingsList& list, bool use_skips = true);

    bool at_end() const { return index_ >= list_->count_; }
    std::uint32_t doc() const { return current_.doc; }
    std::uint32_t fdt() const { return current_.fdt; }
    const Posting& posting() const { return current_; }

    /// Advances to the next posting.
    void next();

    /// Advances to the first posting with doc >= target (never moves
    /// backwards). Returns true iff positioned on an exact match.
    bool seek(std::uint32_t target);

    /// Number of postings decoded so far, including skipped-to ones.
    std::uint64_t postings_decoded() const { return decoded_; }

private:
    void decode_current();

    const PostingsList* list_;
    compress::BitReader reader_;
    bool use_skips_;
    std::uint32_t index_ = 0;  // index of the posting held in current_
    Posting current_;
    std::uint32_t prev_doc_plus_one_ = 0;  // d-gap base (doc+1 of previous posting)
    std::uint64_t decoded_ = 0;
};

}  // namespace teraphim::index
