// Grouped central index for the Central Index (CI) methodology.
//
// The receptionist cannot afford a full duplicate of every librarian's
// index, so adjacent documents are collected into groups of G and the
// groups indexed as if they were single documents (Moffat & Zobel,
// TREC-3 [13]; Section 3 of the paper). Group postings carry
// f_{g,t} = sum of f_{d,t} over the group's documents, and group weights
// are computed from those totals. Query processing ranks groups, expands
// the best k' of them into k'·G candidate document ids, and sends each
// librarian the candidates it owns.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "index/inverted_index.h"

namespace teraphim::index {

/// Global document numbering across an ordered set of subcollections.
/// Subcollection s occupies the contiguous global range
/// [offset(s), offset(s) + size(s)).
class CollectionLayout {
public:
    CollectionLayout() = default;
    explicit CollectionLayout(std::vector<std::uint32_t> sizes);

    std::size_t num_collections() const { return sizes_.size(); }
    std::uint32_t total_documents() const { return total_; }

    std::uint32_t size_of(std::size_t sub) const;
    std::uint32_t offset_of(std::size_t sub) const;

    std::uint32_t global_of(std::size_t sub, std::uint32_t local) const;

    /// Maps a global doc number back to (subcollection, local doc).
    std::pair<std::size_t, std::uint32_t> local_of(std::uint32_t global_doc) const;

    std::size_t owner_of(std::uint32_t global_doc) const { return local_of(global_doc).first; }

private:
    std::vector<std::uint32_t> sizes_;
    std::vector<std::uint32_t> offsets_;
    std::uint32_t total_ = 0;
};

class GroupedIndex {
public:
    /// Merges the subcollection indexes into a grouped central index.
    /// `group_size` is the G of the paper (G=1 degenerates to a full
    /// central index over individual documents).
    static GroupedIndex build(std::span<const InvertedIndex* const> subs,
                              std::uint32_t group_size, std::uint32_t skip_period = 64);

    /// The group-level inverted index ("documents" are groups).
    const InvertedIndex& index() const { return index_; }

    std::uint32_t group_size() const { return group_size_; }
    std::uint32_t num_groups() const { return index_.num_documents(); }
    const CollectionLayout& layout() const { return layout_; }

    /// Global doc-number range [begin, end) covered by a group.
    std::pair<std::uint32_t, std::uint32_t> group_doc_range(std::uint32_t group) const;

private:
    GroupedIndex(InvertedIndex index, CollectionLayout layout, std::uint32_t group_size)
        : index_(std::move(index)), layout_(std::move(layout)), group_size_(group_size) {}

    InvertedIndex index_;
    CollectionLayout layout_;
    std::uint32_t group_size_ = 1;
};

}  // namespace teraphim::index
