#include "index/vocabulary.h"

#include <algorithm>

#include "util/error.h"

namespace teraphim::index {

TermId Vocabulary::add_or_get(std::string_view term) {
    if (const auto it = lookup_.find(term); it != lookup_.end()) return it->second;
    const auto id = static_cast<TermId>(terms_.size());
    terms_.emplace_back(term);
    // The deque guarantees the string object (and hence any SSO buffer)
    // never moves, so the view stored as key stays valid for the
    // vocabulary's lifetime.
    lookup_.emplace(std::string_view(terms_.back()), id);
    return id;
}

std::optional<TermId> Vocabulary::lookup(std::string_view term) const {
    const auto it = lookup_.find(term);
    if (it == lookup_.end()) return std::nullopt;
    return it->second;
}

const std::string& Vocabulary::term(TermId id) const {
    TERAPHIM_ASSERT(id < terms_.size());
    return terms_[id];
}

std::uint64_t Vocabulary::serialized_bytes() const {
    // Front coding over the sorted term list: store the shared-prefix
    // length (1 byte), the suffix length (1 byte), the suffix bytes, and
    // a 3-byte (f_t, pointer) overhead per entry.
    auto ids = sorted_ids();
    std::uint64_t bytes = 0;
    std::string_view prev;
    for (TermId id : ids) {
        std::string_view cur = terms_[id];
        std::size_t common = 0;
        const std::size_t limit = std::min(prev.size(), cur.size());
        while (common < limit && prev[common] == cur[common]) ++common;
        bytes += 2 + (cur.size() - common) + 3;
        prev = cur;
    }
    return bytes;
}

std::vector<TermId> Vocabulary::sorted_ids() const {
    std::vector<TermId> ids(terms_.size());
    for (TermId i = 0; i < terms_.size(); ++i) ids[i] = i;
    std::sort(ids.begin(), ids.end(),
              [&](TermId a, TermId b) { return terms_[a] < terms_[b]; });
    return ids;
}

}  // namespace teraphim::index
