#!/bin/sh
# Regenerates every table/figure bench output (bench_output.txt).
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===================================================================="
  echo "== $b"
  echo "===================================================================="
  "$b"
  echo
done
