#!/bin/sh
# Regenerates every table/figure bench output (bench_output.txt).
# Benches that support it additionally emit machine-readable JSON
# (BENCH_*.json) so the perf trajectory can be tracked across PRs.
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===================================================================="
  echo "== $b"
  echo "===================================================================="
  case "$(basename "$b")" in
    cache_bench)    "$b" --json BENCH_cache.json ;;
    table2_network) "$b" --json BENCH_table2.json ;;
    overload_bench) "$b" --json BENCH_overload.json ;;
    topology_bench) "$b" --json BENCH_topology.json ;;
    selection_bench) "$b" --json BENCH_selection.json ;;
    ingest_bench)   "$b" --json BENCH_ingest.json ;;
    micro_ranking)  "$b" --json BENCH_ranking.json ;;
    *)              "$b" ;;
  esac
  echo
done
