#!/bin/sh
# Builds the whole tree with TERAPHIM_SANITIZE=<address|thread> and runs
# the tier-1 ctest suite under the sanitizer. Usage:
#
#   ./run_sanitized_tests.sh                # AddressSanitizer (default)
#   ./run_sanitized_tests.sh thread         # ThreadSanitizer
#   ./run_sanitized_tests.sh thread fast    # TSan, concurrency tests only
#
# ThreadSanitizer runs always include the `concurrency` label (the
# multi-client server, scatter-gather, and breaker-hammer tests) — first
# on their own so a data race fails fast with focused output, then as
# part of the full suite. `fast` stops after the labeled tests.
#
# The sanitized build lives in build-<san>san/ next to the regular
# build/ so the two never share object files.
set -e

SAN="${1:-address}"
case "$SAN" in
  address|thread) ;;
  *) echo "usage: $0 [address|thread] [fast]" >&2; exit 2 ;;
esac

BUILD="build-${SAN}san"
cmake -B "$BUILD" -S . -DTERAPHIM_SANITIZE="$SAN"
cmake --build "$BUILD" -j
cd "$BUILD"
if [ "$SAN" = thread ]; then
  ctest -L concurrency --output-on-failure -j "$(nproc)"
  [ "${2:-}" = fast ] && exit 0
fi
ctest --output-on-failure -j "$(nproc)"
