#!/bin/sh
# Builds the whole tree with TERAPHIM_SANITIZE=<address|thread> and runs
# the tier-1 ctest suite under the sanitizer. Usage:
#
#   ./run_sanitized_tests.sh            # AddressSanitizer (default)
#   ./run_sanitized_tests.sh thread     # ThreadSanitizer
#
# The sanitized build lives in build-<san>san/ next to the regular
# build/ so the two never share object files.
set -e

SAN="${1:-address}"
case "$SAN" in
  address|thread) ;;
  *) echo "usage: $0 [address|thread]" >&2; exit 2 ;;
esac

BUILD="build-${SAN}san"
cmake -B "$BUILD" -S . -DTERAPHIM_SANITIZE="$SAN"
cmake --build "$BUILD" -j
cd "$BUILD" && ctest --output-on-failure -j "$(nproc)"
