
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/bitio.cpp" "src/CMakeFiles/teraphim.dir/compress/bitio.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/compress/bitio.cpp.o.d"
  "/root/repo/src/compress/codecs.cpp" "src/CMakeFiles/teraphim.dir/compress/codecs.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/compress/codecs.cpp.o.d"
  "/root/repo/src/compress/huffman.cpp" "src/CMakeFiles/teraphim.dir/compress/huffman.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/compress/huffman.cpp.o.d"
  "/root/repo/src/compress/textcodec.cpp" "src/CMakeFiles/teraphim.dir/compress/textcodec.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/compress/textcodec.cpp.o.d"
  "/root/repo/src/corpus/generator.cpp" "src/CMakeFiles/teraphim.dir/corpus/generator.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/corpus/generator.cpp.o.d"
  "/root/repo/src/corpus/topics.cpp" "src/CMakeFiles/teraphim.dir/corpus/topics.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/corpus/topics.cpp.o.d"
  "/root/repo/src/corpus/zipf.cpp" "src/CMakeFiles/teraphim.dir/corpus/zipf.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/corpus/zipf.cpp.o.d"
  "/root/repo/src/dir/accounting.cpp" "src/CMakeFiles/teraphim.dir/dir/accounting.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/dir/accounting.cpp.o.d"
  "/root/repo/src/dir/deployment.cpp" "src/CMakeFiles/teraphim.dir/dir/deployment.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/dir/deployment.cpp.o.d"
  "/root/repo/src/dir/fault.cpp" "src/CMakeFiles/teraphim.dir/dir/fault.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/dir/fault.cpp.o.d"
  "/root/repo/src/dir/librarian.cpp" "src/CMakeFiles/teraphim.dir/dir/librarian.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/dir/librarian.cpp.o.d"
  "/root/repo/src/dir/merge.cpp" "src/CMakeFiles/teraphim.dir/dir/merge.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/dir/merge.cpp.o.d"
  "/root/repo/src/dir/methodologies.cpp" "src/CMakeFiles/teraphim.dir/dir/methodologies.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/dir/methodologies.cpp.o.d"
  "/root/repo/src/dir/protocol.cpp" "src/CMakeFiles/teraphim.dir/dir/protocol.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/dir/protocol.cpp.o.d"
  "/root/repo/src/dir/receptionist.cpp" "src/CMakeFiles/teraphim.dir/dir/receptionist.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/dir/receptionist.cpp.o.d"
  "/root/repo/src/dir/retry.cpp" "src/CMakeFiles/teraphim.dir/dir/retry.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/dir/retry.cpp.o.d"
  "/root/repo/src/eval/metrics.cpp" "src/CMakeFiles/teraphim.dir/eval/metrics.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/eval/metrics.cpp.o.d"
  "/root/repo/src/eval/queryset.cpp" "src/CMakeFiles/teraphim.dir/eval/queryset.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/eval/queryset.cpp.o.d"
  "/root/repo/src/index/builder.cpp" "src/CMakeFiles/teraphim.dir/index/builder.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/index/builder.cpp.o.d"
  "/root/repo/src/index/grouped_index.cpp" "src/CMakeFiles/teraphim.dir/index/grouped_index.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/index/grouped_index.cpp.o.d"
  "/root/repo/src/index/inverted_index.cpp" "src/CMakeFiles/teraphim.dir/index/inverted_index.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/index/inverted_index.cpp.o.d"
  "/root/repo/src/index/persist.cpp" "src/CMakeFiles/teraphim.dir/index/persist.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/index/persist.cpp.o.d"
  "/root/repo/src/index/postings.cpp" "src/CMakeFiles/teraphim.dir/index/postings.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/index/postings.cpp.o.d"
  "/root/repo/src/index/pruning.cpp" "src/CMakeFiles/teraphim.dir/index/pruning.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/index/pruning.cpp.o.d"
  "/root/repo/src/index/vocabulary.cpp" "src/CMakeFiles/teraphim.dir/index/vocabulary.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/index/vocabulary.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/CMakeFiles/teraphim.dir/net/message.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/net/message.cpp.o.d"
  "/root/repo/src/net/serialize.cpp" "src/CMakeFiles/teraphim.dir/net/serialize.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/net/serialize.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/CMakeFiles/teraphim.dir/net/tcp.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/net/tcp.cpp.o.d"
  "/root/repo/src/rank/boolean.cpp" "src/CMakeFiles/teraphim.dir/rank/boolean.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/rank/boolean.cpp.o.d"
  "/root/repo/src/rank/candidate_scorer.cpp" "src/CMakeFiles/teraphim.dir/rank/candidate_scorer.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/rank/candidate_scorer.cpp.o.d"
  "/root/repo/src/rank/query_processor.cpp" "src/CMakeFiles/teraphim.dir/rank/query_processor.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/rank/query_processor.cpp.o.d"
  "/root/repo/src/rank/similarity.cpp" "src/CMakeFiles/teraphim.dir/rank/similarity.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/rank/similarity.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/CMakeFiles/teraphim.dir/sim/cost_model.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/sim/cost_model.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/teraphim.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/resource.cpp" "src/CMakeFiles/teraphim.dir/sim/resource.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/sim/resource.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/CMakeFiles/teraphim.dir/sim/topology.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/sim/topology.cpp.o.d"
  "/root/repo/src/store/docstore.cpp" "src/CMakeFiles/teraphim.dir/store/docstore.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/store/docstore.cpp.o.d"
  "/root/repo/src/store/persist.cpp" "src/CMakeFiles/teraphim.dir/store/persist.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/store/persist.cpp.o.d"
  "/root/repo/src/text/pipeline.cpp" "src/CMakeFiles/teraphim.dir/text/pipeline.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/text/pipeline.cpp.o.d"
  "/root/repo/src/text/stemmer.cpp" "src/CMakeFiles/teraphim.dir/text/stemmer.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/text/stemmer.cpp.o.d"
  "/root/repo/src/text/stopwords.cpp" "src/CMakeFiles/teraphim.dir/text/stopwords.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/text/stopwords.cpp.o.d"
  "/root/repo/src/text/tokenizer.cpp" "src/CMakeFiles/teraphim.dir/text/tokenizer.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/text/tokenizer.cpp.o.d"
  "/root/repo/src/util/error.cpp" "src/CMakeFiles/teraphim.dir/util/error.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/util/error.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/teraphim.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/teraphim.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/util/strings.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "src/CMakeFiles/teraphim.dir/util/timer.cpp.o" "gcc" "src/CMakeFiles/teraphim.dir/util/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
