file(REMOVE_RECURSE
  "libteraphim.a"
)
