# Empty dependencies file for teraphim.
# This may be replaced when dependencies are built.
