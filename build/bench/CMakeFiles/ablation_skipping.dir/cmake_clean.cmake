file(REMOVE_RECURSE
  "CMakeFiles/ablation_skipping.dir/ablation_skipping.cpp.o"
  "CMakeFiles/ablation_skipping.dir/ablation_skipping.cpp.o.d"
  "ablation_skipping"
  "ablation_skipping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_skipping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
