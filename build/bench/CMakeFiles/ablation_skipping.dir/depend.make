# Empty dependencies file for ablation_skipping.
# This may be replaced when dependencies are built.
