# Empty compiler generated dependencies file for ablation_kprime.
# This may be replaced when dependencies are built.
