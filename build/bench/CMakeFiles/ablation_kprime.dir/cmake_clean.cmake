file(REMOVE_RECURSE
  "CMakeFiles/ablation_kprime.dir/ablation_kprime.cpp.o"
  "CMakeFiles/ablation_kprime.dir/ablation_kprime.cpp.o.d"
  "ablation_kprime"
  "ablation_kprime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kprime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
