# Empty dependencies file for ablation_43subcollections.
# This may be replaced when dependencies are built.
