file(REMOVE_RECURSE
  "CMakeFiles/ablation_43subcollections.dir/ablation_43subcollections.cpp.o"
  "CMakeFiles/ablation_43subcollections.dir/ablation_43subcollections.cpp.o.d"
  "ablation_43subcollections"
  "ablation_43subcollections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_43subcollections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
