# Empty dependencies file for table4_total_time.
# This may be replaced when dependencies are built.
