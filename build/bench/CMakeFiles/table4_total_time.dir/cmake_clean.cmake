file(REMOVE_RECURSE
  "CMakeFiles/table4_total_time.dir/table4_total_time.cpp.o"
  "CMakeFiles/table4_total_time.dir/table4_total_time.cpp.o.d"
  "table4_total_time"
  "table4_total_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_total_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
