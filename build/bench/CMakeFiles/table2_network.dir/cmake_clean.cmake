file(REMOVE_RECURSE
  "CMakeFiles/table2_network.dir/table2_network.cpp.o"
  "CMakeFiles/table2_network.dir/table2_network.cpp.o.d"
  "table2_network"
  "table2_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
