# Empty dependencies file for table2_network.
# This may be replaced when dependencies are built.
