# Empty compiler generated dependencies file for table3_index_time.
# This may be replaced when dependencies are built.
