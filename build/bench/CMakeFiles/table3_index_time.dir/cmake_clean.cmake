file(REMOVE_RECURSE
  "CMakeFiles/table3_index_time.dir/table3_index_time.cpp.o"
  "CMakeFiles/table3_index_time.dir/table3_index_time.cpp.o.d"
  "table3_index_time"
  "table3_index_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_index_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
