file(REMOVE_RECURSE
  "CMakeFiles/micro_ranking.dir/micro_ranking.cpp.o"
  "CMakeFiles/micro_ranking.dir/micro_ranking.cpp.o.d"
  "micro_ranking"
  "micro_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
