# Empty dependencies file for micro_ranking.
# This may be replaced when dependencies are built.
