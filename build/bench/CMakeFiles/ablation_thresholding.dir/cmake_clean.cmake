file(REMOVE_RECURSE
  "CMakeFiles/ablation_thresholding.dir/ablation_thresholding.cpp.o"
  "CMakeFiles/ablation_thresholding.dir/ablation_thresholding.cpp.o.d"
  "ablation_thresholding"
  "ablation_thresholding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_thresholding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
