file(REMOVE_RECURSE
  "CMakeFiles/resource_usage.dir/resource_usage.cpp.o"
  "CMakeFiles/resource_usage.dir/resource_usage.cpp.o.d"
  "resource_usage"
  "resource_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
