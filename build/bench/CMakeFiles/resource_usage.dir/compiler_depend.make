# Empty compiler generated dependencies file for resource_usage.
# This may be replaced when dependencies are built.
