# Empty dependencies file for table1_effectiveness.
# This may be replaced when dependencies are built.
