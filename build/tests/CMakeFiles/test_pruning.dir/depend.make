# Empty dependencies file for test_pruning.
# This may be replaced when dependencies are built.
