# Empty dependencies file for test_librarian.
# This may be replaced when dependencies are built.
