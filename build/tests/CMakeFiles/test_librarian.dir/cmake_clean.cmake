file(REMOVE_RECURSE
  "CMakeFiles/test_librarian.dir/test_librarian.cpp.o"
  "CMakeFiles/test_librarian.dir/test_librarian.cpp.o.d"
  "test_librarian"
  "test_librarian.pdb"
  "test_librarian[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_librarian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
