file(REMOVE_RECURSE
  "CMakeFiles/test_receptionist.dir/test_receptionist.cpp.o"
  "CMakeFiles/test_receptionist.dir/test_receptionist.cpp.o.d"
  "test_receptionist"
  "test_receptionist.pdb"
  "test_receptionist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_receptionist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
