# Empty compiler generated dependencies file for test_receptionist.
# This may be replaced when dependencies are built.
