file(REMOVE_RECURSE
  "CMakeFiles/test_grouped_index.dir/test_grouped_index.cpp.o"
  "CMakeFiles/test_grouped_index.dir/test_grouped_index.cpp.o.d"
  "test_grouped_index"
  "test_grouped_index.pdb"
  "test_grouped_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grouped_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
