# Empty compiler generated dependencies file for test_grouped_index.
# This may be replaced when dependencies are built.
