# Empty compiler generated dependencies file for test_postings.
# This may be replaced when dependencies are built.
