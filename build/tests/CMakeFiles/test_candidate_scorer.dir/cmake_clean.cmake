file(REMOVE_RECURSE
  "CMakeFiles/test_candidate_scorer.dir/test_candidate_scorer.cpp.o"
  "CMakeFiles/test_candidate_scorer.dir/test_candidate_scorer.cpp.o.d"
  "test_candidate_scorer"
  "test_candidate_scorer.pdb"
  "test_candidate_scorer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_candidate_scorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
