file(REMOVE_RECURSE
  "CMakeFiles/test_docstore.dir/test_docstore.cpp.o"
  "CMakeFiles/test_docstore.dir/test_docstore.cpp.o.d"
  "test_docstore"
  "test_docstore.pdb"
  "test_docstore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_docstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
