file(REMOVE_RECURSE
  "CMakeFiles/test_query_processor.dir/test_query_processor.cpp.o"
  "CMakeFiles/test_query_processor.dir/test_query_processor.cpp.o.d"
  "test_query_processor"
  "test_query_processor.pdb"
  "test_query_processor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_query_processor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
