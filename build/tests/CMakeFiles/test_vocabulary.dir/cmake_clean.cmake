file(REMOVE_RECURSE
  "CMakeFiles/test_vocabulary.dir/test_vocabulary.cpp.o"
  "CMakeFiles/test_vocabulary.dir/test_vocabulary.cpp.o.d"
  "test_vocabulary"
  "test_vocabulary.pdb"
  "test_vocabulary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vocabulary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
