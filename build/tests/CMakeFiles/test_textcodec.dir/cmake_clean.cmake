file(REMOVE_RECURSE
  "CMakeFiles/test_textcodec.dir/test_textcodec.cpp.o"
  "CMakeFiles/test_textcodec.dir/test_textcodec.cpp.o.d"
  "test_textcodec"
  "test_textcodec.pdb"
  "test_textcodec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_textcodec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
