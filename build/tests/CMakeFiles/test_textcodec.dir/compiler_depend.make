# Empty compiler generated dependencies file for test_textcodec.
# This may be replaced when dependencies are built.
