file(REMOVE_RECURSE
  "CMakeFiles/test_deployment_sim.dir/test_deployment_sim.cpp.o"
  "CMakeFiles/test_deployment_sim.dir/test_deployment_sim.cpp.o.d"
  "test_deployment_sim"
  "test_deployment_sim.pdb"
  "test_deployment_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deployment_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
