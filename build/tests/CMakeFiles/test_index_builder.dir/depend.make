# Empty dependencies file for test_index_builder.
# This may be replaced when dependencies are built.
