file(REMOVE_RECURSE
  "CMakeFiles/test_index_builder.dir/test_index_builder.cpp.o"
  "CMakeFiles/test_index_builder.dir/test_index_builder.cpp.o.d"
  "test_index_builder"
  "test_index_builder.pdb"
  "test_index_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
