file(REMOVE_RECURSE
  "CMakeFiles/test_stemmer.dir/test_stemmer.cpp.o"
  "CMakeFiles/test_stemmer.dir/test_stemmer.cpp.o.d"
  "test_stemmer"
  "test_stemmer.pdb"
  "test_stemmer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stemmer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
