# Empty dependencies file for distributed_search.
# This may be replaced when dependencies are built.
