file(REMOVE_RECURSE
  "CMakeFiles/distributed_search.dir/distributed_search.cpp.o"
  "CMakeFiles/distributed_search.dir/distributed_search.cpp.o.d"
  "distributed_search"
  "distributed_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
