file(REMOVE_RECURSE
  "CMakeFiles/effectiveness_demo.dir/effectiveness_demo.cpp.o"
  "CMakeFiles/effectiveness_demo.dir/effectiveness_demo.cpp.o.d"
  "effectiveness_demo"
  "effectiveness_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/effectiveness_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
