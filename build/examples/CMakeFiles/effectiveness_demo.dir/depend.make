# Empty dependencies file for effectiveness_demo.
# This may be replaced when dependencies are built.
