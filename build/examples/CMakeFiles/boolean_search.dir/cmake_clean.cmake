file(REMOVE_RECURSE
  "CMakeFiles/boolean_search.dir/boolean_search.cpp.o"
  "CMakeFiles/boolean_search.dir/boolean_search.cpp.o.d"
  "boolean_search"
  "boolean_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boolean_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
