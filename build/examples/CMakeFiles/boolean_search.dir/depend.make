# Empty dependencies file for boolean_search.
# This may be replaced when dependencies are built.
