# Empty compiler generated dependencies file for wan_simulation.
# This may be replaced when dependencies are built.
